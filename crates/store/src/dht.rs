//! The distributed in-memory hash table.
//!
//! Oparaca's class runtimes keep hot object state in a distributed
//! in-memory hash table (Infinispan in the real system) and "consolidate
//! data for batch write operations" to the database (paper §V). `Dht`
//! models the table itself: membership via a consistent-hash ring,
//! per-member in-memory partitions, synchronous replication to the next
//! `replication - 1` distinct members, and deterministic rebalancing on
//! membership changes.
//!
//! Durability is *not* this type's job — pair it with
//! [`crate::WriteBehindBuffer`] and [`crate::PersistentDb`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use oprc_value::Snapshot;

use crate::{HashRing, StoreError};

/// Identifier of a DHT member node.
///
/// In the platform, each class-runtime instance (or each worker VM)
/// hosts one member.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DhtNodeId(pub u64);

impl std::fmt::Display for DhtNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dht-{}", self.0)
    }
}

/// Replica sets up to this size live entirely on the stack.
pub const MAX_INLINE_OWNERS: usize = 8;

/// The replica set of one key, primary first — allocation-free for the
/// common case.
///
/// [`Dht::owners`] sits on the invoke hot path (every state read and
/// write resolves its replica set), so the set is an inline array up to
/// [`MAX_INLINE_OWNERS`] members and only spills to the heap for
/// replication factors larger than that. Dereferences to a slice of
/// [`DhtNodeId`], so slice idioms (`len`, indexing, `contains`) work
/// unchanged.
#[derive(Debug, Clone, Default)]
pub struct OwnerSet {
    len: usize,
    inline: [DhtNodeId; MAX_INLINE_OWNERS],
    /// Used only when the set outgrows the inline buffer; an empty `Vec`
    /// never allocates.
    spill: Vec<DhtNodeId>,
}

impl OwnerSet {
    fn new() -> Self {
        OwnerSet::default()
    }

    fn push(&mut self, id: DhtNodeId) {
        if self.spill.is_empty() && self.len < MAX_INLINE_OWNERS {
            self.inline[self.len] = id;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(id);
        }
        self.len += 1;
    }

    /// The owners as a slice, primary first.
    pub fn as_slice(&self) -> &[DhtNodeId] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for OwnerSet {
    type Target = [DhtNodeId];
    fn deref(&self) -> &[DhtNodeId] {
        self.as_slice()
    }
}

/// Consuming iterator over an [`OwnerSet`].
#[derive(Debug)]
pub struct OwnerSetIter {
    set: OwnerSet,
    pos: usize,
}

impl Iterator for OwnerSetIter {
    type Item = DhtNodeId;
    fn next(&mut self) -> Option<DhtNodeId> {
        let id = self.set.as_slice().get(self.pos).copied()?;
        self.pos += 1;
        Some(id)
    }
}

impl IntoIterator for OwnerSet {
    type Item = DhtNodeId;
    type IntoIter = OwnerSetIter;
    fn into_iter(self) -> OwnerSetIter {
        OwnerSetIter { set: self, pos: 0 }
    }
}

impl<'a> IntoIterator for &'a OwnerSet {
    type Item = &'a DhtNodeId;
    type IntoIter = std::slice::Iter<'a, DhtNodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Tunables for [`Dht`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhtConfig {
    /// Copies of each record (1 = no redundancy).
    pub replication: usize,
    /// Virtual nodes per member on the hash ring.
    pub vnodes: u32,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            replication: 2,
            vnodes: 64,
        }
    }
}

/// A partitioned, replicated, in-memory hash table.
///
/// # Examples
///
/// ```
/// use oprc_store::{Dht, DhtConfig, DhtNodeId};
/// use oprc_value::vjson;
///
/// let mut dht = Dht::new(DhtConfig::default());
/// dht.join(DhtNodeId(0));
/// dht.join(DhtNodeId(1));
/// dht.put("obj-1", vjson!({"n": 1}))?;
/// assert_eq!(dht.get("obj-1").unwrap()["n"].as_i64(), Some(1));
/// # Ok::<(), oprc_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Dht {
    cfg: DhtConfig,
    ring: HashRing,
    /// member → partition data. Records are copy-on-write snapshots,
    /// so replicating a value to `replication` members or rebalancing a
    /// partition bumps refcounts instead of deep-cloning state.
    partitions: BTreeMap<DhtNodeId, BTreeMap<String, Snapshot>>,
    /// Operation counters are atomic so the read path ([`Dht::get`],
    /// [`Dht::owners`], [`Dht::primary`], [`Dht::partition_len`]) works
    /// through `&self` — concurrent readers never serialize on a counter.
    puts: AtomicU64,
    gets: AtomicU64,
    moved_records: AtomicU64,
}

impl Clone for Dht {
    fn clone(&self) -> Self {
        Dht {
            cfg: self.cfg.clone(),
            ring: self.ring.clone(),
            partitions: self.partitions.clone(),
            puts: AtomicU64::new(self.puts.load(Ordering::Relaxed)),
            gets: AtomicU64::new(self.gets.load(Ordering::Relaxed)),
            moved_records: AtomicU64::new(self.moved_records.load(Ordering::Relaxed)),
        }
    }
}

impl Dht {
    /// Creates an empty table with no members.
    pub fn new(cfg: DhtConfig) -> Self {
        let ring = HashRing::new(cfg.vnodes);
        Dht {
            cfg,
            ring,
            partitions: BTreeMap::new(),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            moved_records: AtomicU64::new(0),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DhtConfig {
        &self.cfg
    }

    /// Current members in id order.
    pub fn members(&self) -> Vec<DhtNodeId> {
        self.partitions.keys().copied().collect()
    }

    /// Total `put` operations served.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Total `get` operations served.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Records moved by rebalances so far.
    pub fn moved_records(&self) -> u64 {
        self.moved_records.load(Ordering::Relaxed)
    }

    /// Adds a member and rebalances affected records onto it.
    ///
    /// Returns the number of records that moved.
    pub fn join(&mut self, node: DhtNodeId) -> u64 {
        if self.partitions.contains_key(&node) {
            return 0;
        }
        self.ring.add(node.0);
        self.partitions.insert(node, BTreeMap::new());
        self.rebalance()
    }

    /// Removes a member, redistributing the records it held.
    ///
    /// Returns the number of records that moved. Records survive as long
    /// as at least one replica member remains; with `replication` == 1 a
    /// leave is lossy only if the member held the sole copy and no other
    /// member exists.
    pub fn leave(&mut self, node: DhtNodeId) -> u64 {
        let Some(orphaned) = self.partitions.remove(&node) else {
            return 0;
        };
        self.ring.remove(node.0);
        // Re-insert orphaned records (replicas elsewhere may already hold
        // them; re-putting is idempotent).
        let mut moved = 0;
        for (k, v) in orphaned {
            if !self.ring.is_empty() {
                self.put_internal(&k, v);
                moved += 1;
            }
        }
        moved += self.rebalance();
        self.moved_records.fetch_add(moved, Ordering::Relaxed);
        moved
    }

    /// The members holding replicas of `key`, primary first.
    ///
    /// Allocation-free for replication factors up to
    /// [`MAX_INLINE_OWNERS`]: the distinct-member walk dedups into the
    /// returned set's inline buffer instead of a heap vector.
    pub fn owners(&self, key: &str) -> OwnerSet {
        let mut out = OwnerSet::new();
        let want = self.cfg.replication.min(self.ring.len());
        if want == 0 {
            return out;
        }
        for member in self.ring.walk(key) {
            let id = DhtNodeId(member);
            if !out.as_slice().contains(&id) {
                out.push(id);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary owner of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoOwner`] on an empty table.
    pub fn primary(&self, key: &str) -> Result<DhtNodeId, StoreError> {
        self.ring
            .owner(key)
            .map(DhtNodeId)
            .ok_or(StoreError::NoOwner)
    }

    /// Stores `value` under `key` on all replica members.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoOwner`] when the table has no members.
    pub fn put(&mut self, key: &str, value: impl Into<Snapshot>) -> Result<(), StoreError> {
        if self.ring.is_empty() {
            return Err(StoreError::NoOwner);
        }
        self.put_internal(key, value.into());
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn put_internal(&mut self, key: &str, value: Snapshot) {
        for owner in self.owners(key) {
            self.partitions
                .get_mut(&owner)
                .expect("ring members have partitions")
                .insert(key.to_string(), value.clone());
        }
    }

    /// Reads `key` from its primary replica. The returned snapshot
    /// shares the partition's allocation (refcount bump, not a copy).
    ///
    /// Takes `&self`: the only mutation is the atomic `gets` counter, so
    /// any number of readers may probe the table concurrently.
    pub fn get(&self, key: &str) -> Option<Snapshot> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let primary = self.ring.owner(key).map(DhtNodeId)?;
        self.partitions.get(&primary)?.get(key).cloned()
    }

    /// Removes `key` from all replicas, returning the primary's copy.
    pub fn delete(&mut self, key: &str) -> Option<Snapshot> {
        let mut out = None;
        for owner in self.owners(key) {
            let removed = self.partitions.get_mut(&owner).and_then(|p| p.remove(key));
            out = out.or(removed);
        }
        out
    }

    /// Number of records on `node` (diagnostics / balance checks).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownNode`] if the node is not a member.
    pub fn partition_len(&self, node: DhtNodeId) -> Result<usize, StoreError> {
        self.partitions
            .get(&node)
            .map(BTreeMap::len)
            .ok_or(StoreError::UnknownNode(node.0))
    }

    /// Total distinct keys (union over partitions).
    pub fn len(&self) -> usize {
        let mut keys: Vec<&String> = self.partitions.values().flat_map(|p| p.keys()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.partitions.values().all(BTreeMap::is_empty)
    }

    /// Moves every record to its correct replica set after a membership
    /// change; returns how many records moved.
    fn rebalance(&mut self) -> u64 {
        let mut moved = 0;
        // Collect all (key, value) with current holder.
        let snapshot: Vec<(DhtNodeId, String, Snapshot)> = self
            .partitions
            .iter()
            .flat_map(|(&n, p)| p.iter().map(move |(k, v)| (n, k.clone(), v.clone())))
            .collect();
        for (holder, key, value) in snapshot {
            let owners = self.owners(&key);
            if !owners.contains(&holder) {
                self.partitions
                    .get_mut(&holder)
                    .expect("holder exists")
                    .remove(&key);
                moved += 1;
            }
            for owner in owners {
                let p = self.partitions.get_mut(&owner).expect("owner exists");
                if !p.contains_key(&key) {
                    p.insert(key.clone(), value.clone());
                    moved += 1;
                }
            }
        }
        self.moved_records.fetch_add(moved, Ordering::Relaxed);
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oprc_value::vjson;

    fn dht(members: u64, replication: usize) -> Dht {
        let mut d = Dht::new(DhtConfig {
            replication,
            vnodes: 32,
        });
        for m in 0..members {
            d.join(DhtNodeId(m));
        }
        d
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut d = dht(3, 2);
        d.put("a", vjson!({"v": 1})).unwrap();
        assert_eq!(d.get("a").unwrap()["v"].as_i64(), Some(1));
        assert_eq!(d.delete("a").unwrap()["v"].as_i64(), Some(1));
        assert_eq!(d.get("a"), None);
        assert_eq!(d.puts(), 1);
        assert!(d.gets() >= 2);
    }

    #[test]
    fn empty_table_rejects_puts() {
        let mut d = Dht::new(DhtConfig::default());
        assert_eq!(d.put("k", vjson!(1)), Err(StoreError::NoOwner));
        assert_eq!(d.primary("k"), Err(StoreError::NoOwner));
    }

    #[test]
    fn replication_places_copies_on_distinct_members() {
        let mut d = dht(4, 3);
        d.put("key", vjson!(1)).unwrap();
        let owners = d.owners("key");
        assert_eq!(owners.len(), 3);
        for o in &owners {
            assert!(d.partitions[o].contains_key("key"));
        }
        // Non-owners don't hold it.
        let holding = d
            .partitions
            .iter()
            .filter(|(_, p)| p.contains_key("key"))
            .count();
        assert_eq!(holding, 3);
    }

    #[test]
    fn replicas_share_one_allocation() {
        // Replication is a refcount bump per extra member, not a deep
        // clone — the CoW contract the hot path relies on.
        let mut d = dht(4, 3);
        d.put("key", vjson!({"payload": [1, 2, 3]})).unwrap();
        let owners = d.owners("key");
        let primary_copy = d.partitions[&owners[0]]["key"].clone();
        for o in &owners[1..] {
            assert!(Snapshot::ptr_eq(&primary_copy, &d.partitions[o]["key"]));
        }
        assert!(Snapshot::ptr_eq(&primary_copy, &d.get("key").unwrap()));
    }

    #[test]
    fn records_survive_single_member_loss() {
        let mut d = dht(4, 2);
        for i in 0..200 {
            d.put(&format!("k{i}"), vjson!(i)).unwrap();
        }
        d.leave(DhtNodeId(1));
        for i in 0..200 {
            assert_eq!(
                d.get(&format!("k{i}")).and_then(|v| v.as_i64()),
                Some(i),
                "k{i} lost after leave"
            );
        }
    }

    #[test]
    fn join_rebalances_ownership() {
        let mut d = dht(2, 1);
        for i in 0..300 {
            d.put(&format!("k{i}"), vjson!(i)).unwrap();
        }
        let moved = d.join(DhtNodeId(2));
        assert!(moved > 0, "a join must take over some keys");
        // All keys still readable, and the new member holds some.
        for i in 0..300 {
            assert!(d.get(&format!("k{i}")).is_some());
        }
        assert!(d.partition_len(DhtNodeId(2)).unwrap() > 20);
        // Invariant: every key lives exactly on its owner set.
        for i in 0..300 {
            let k = format!("k{i}");
            let owners = d.owners(&k);
            let holders: Vec<DhtNodeId> = d
                .partitions
                .iter()
                .filter(|(_, p)| p.contains_key(&k))
                .map(|(&n, _)| n)
                .collect();
            assert_eq!(holders, owners.as_slice(), "key {k}");
        }
    }

    #[test]
    fn partition_sizes_roughly_balanced() {
        let mut d = dht(4, 1);
        for i in 0..2000 {
            d.put(&format!("key-{i}"), vjson!(i)).unwrap();
        }
        for m in d.members() {
            let n = d.partition_len(m).unwrap();
            assert!((200..=1000).contains(&n), "partition {m} has {n}");
        }
        assert_eq!(d.len(), 2000);
    }

    #[test]
    fn idempotent_join_leave() {
        let mut d = dht(2, 1);
        assert_eq!(d.join(DhtNodeId(0)), 0);
        assert_eq!(d.leave(DhtNodeId(77)), 0);
        assert_eq!(d.members().len(), 2);
    }

    #[test]
    fn unknown_partition_query_errors() {
        let d = dht(1, 1);
        assert_eq!(
            d.partition_len(DhtNodeId(9)),
            Err(StoreError::UnknownNode(9))
        );
    }

    #[test]
    fn shared_reads_count_atomically() {
        let mut d = dht(2, 1);
        d.put("k", vjson!(1)).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        assert!(d.get("k").is_some());
                    }
                });
            }
        });
        assert_eq!(d.gets(), 400);
    }

    #[test]
    fn clone_carries_counters() {
        let mut d = dht(2, 1);
        d.put("k", vjson!(1)).unwrap();
        let _ = d.get("k");
        let c = d.clone();
        assert_eq!(c.puts(), 1);
        assert_eq!(c.gets(), 1);
        assert_eq!(c.get("k").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn replication_capped_by_membership() {
        let mut d = dht(2, 3);
        d.put("k", vjson!(1)).unwrap();
        assert_eq!(d.owners("k").len(), 2);
    }

    #[test]
    fn owner_set_matches_ring_replicas() {
        let d = dht(5, 3);
        for i in 0..100 {
            let k = format!("key-{i}");
            let owners = d.owners(&k);
            assert_eq!(owners.len(), 3);
            assert_eq!(owners[0], d.primary(&k).unwrap());
            let mut dedup: Vec<DhtNodeId> = owners.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), owners.len(), "owners must be distinct");
        }
    }

    #[test]
    fn owner_set_spills_past_inline_capacity() {
        let mut d = dht(12, 12);
        d.put("wide", vjson!(1)).unwrap();
        let owners = d.owners("wide");
        assert_eq!(owners.len(), 12, "spill path must keep all members");
        let mut seen: Vec<DhtNodeId> = owners.as_slice().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 12);
        for o in &owners {
            assert!(d.partitions[o].contains_key("wide"));
        }
    }
}
