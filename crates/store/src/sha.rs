//! SHA-256 and HMAC-SHA-256.
//!
//! Presigned URLs (paper §III-D) need a real keyed signature so that the
//! "no secret sharing with user code" property is actually enforced and
//! testable. The approved offline dependency set has no crypto crate, so
//! this module implements FIPS 180-4 SHA-256 and RFC 2104 HMAC directly.
//! It is used for URL signing and object ETags — not for anything
//! requiring side-channel hardening.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Computes the SHA-256 digest of `data`.
///
/// # Examples
///
/// ```
/// let d = oprc_store::sha::sha256(b"abc");
/// assert_eq!(
///     oprc_store::sha::to_hex(&d),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = H0;
    let bit_len = (data.len() as u64).wrapping_mul(8);

    // Process full blocks from the message, then the padded tail.
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut h, block.try_into().expect("64-byte block"));
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() + 9 <= 64 { 1 } else { 2 };
    let len_off = tail_blocks * 64 - 8;
    tail[len_off..len_off + 8].copy_from_slice(&bit_len.to_be_bytes());
    for i in 0..tail_blocks {
        compress(
            &mut h,
            tail[i * 64..(i + 1) * 64].try_into().expect("64 bytes"),
        );
    }

    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress(h: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

/// Computes HMAC-SHA-256 of `message` under `key` (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    let mut outer = Vec::with_capacity(BLOCK + DIGEST_LEN);
    for b in key_block {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_digest = sha256(&inner);
    for b in key_block {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_digest);
    sha256(&outer)
}

/// Hex-encodes a digest (lowercase).
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase/uppercase hex string.
///
/// Returns `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok())
        .collect()
}

/// Constant-time-ish comparison of two digests.
///
/// Not hardened against microarchitectural channels; sufficient for the
/// simulated object store.
pub fn digests_equal(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVS vectors.
    #[test]
    fn nist_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(to_hex(&sha256(input)), expected);
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn block_boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x61u8; len];
            let d = sha256(&data);
            assert_eq!(d.len(), 32);
            // Compare against an independently computed property:
            // hashing twice must agree.
            assert_eq!(d, sha256(&data));
        }
    }

    // RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let msg = b"Hi There";
        assert_eq!(
            to_hex(&hmac_sha256(&key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            to_hex(&hmac_sha256(&key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn digest_compare() {
        let a = sha256(b"x");
        let b = sha256(b"x");
        let c = sha256(b"y");
        assert!(digests_equal(&a, &b));
        assert!(!digests_equal(&a, &c));
        assert!(!digests_equal(&a, &a[..16]));
    }

    #[test]
    fn hex_format() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
    }

    #[test]
    fn hex_round_trip() {
        let data = [0u8, 1, 127, 128, 255];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert_eq!(from_hex("0F"), Some(vec![15]));
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex(""), Some(vec![]));
    }
}
