//! Storage substrates for the Oparaca reproduction.
//!
//! The paper's evaluation (§V) hinges on storage behaviour: the Knative
//! baseline writes object state straight to a database and **plateaus
//! when the database's write throughput saturates**, while Oparaca routes
//! writes through a **distributed in-memory hash table** that
//! consolidates them into **batch write operations**. §III-D adds
//! **unstructured data** via S3-protocol object storage with **presigned
//! URLs**. This crate implements all of those substrates:
//!
//! - [`KvStore`] — the storage interface (get/put/delete/scan) used by
//!   the object runtime, with [`MemStore`] as the trivial implementation;
//! - [`PersistentDb`] — a durable KV store whose *write admission* is
//!   governed by a configurable write-ops budget (token bucket), the
//!   bottleneck resource in Fig. 3;
//! - [`HashRing`] — consistent hashing with virtual nodes;
//! - [`Dht`] — a partitioned, replicated in-memory hash table
//!   (Oparaca's Infinispan stand-in) with deterministic rebalancing;
//! - [`PartitionMap`] — epoch-stamped assignment of object partitions
//!   to cluster nodes, with [`MigrationPlan`] diffs driving live
//!   object migration on node join/leave;
//! - [`WriteBehindBuffer`] — per-key-deduplicating write-behind buffer
//!   that turns N object updates into ⌈N/B⌉ batched database writes;
//! - [`ObjectStore`] — S3-like bucket/key storage over [`bytes::Bytes`]
//!   with [`presign`]ed URLs (HMAC-SHA-256, implemented in [`sha`]) and
//!   [`multipart`] uploads for large payloads.
//!
//! # Examples
//!
//! ```
//! use oprc_store::{KvStore, MemStore};
//! use oprc_value::vjson;
//!
//! let mut store = MemStore::new();
//! store.put("obj/1", vjson!({"width": 100}));
//! assert_eq!(store.get("obj/1").unwrap()["width"].as_i64(), Some(100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dht;
mod error;
mod hashring;
mod kv;
mod objectstore;
mod partition;
mod persistent;
mod writebehind;

pub mod multipart;
pub mod presign;
pub mod sha;

pub use dht::{Dht, DhtConfig, DhtNodeId, OwnerSet, MAX_INLINE_OWNERS};
pub use error::StoreError;
pub use hashring::HashRing;
pub use kv::{KvStore, MemStore};
pub use objectstore::{ObjectMeta, ObjectStore, StoredObject};
pub use partition::{
    partition_of, MigrationPlan, PartitionAssignment, PartitionMap, PartitionMove,
    DEFAULT_PARTITION_COUNT,
};
pub use persistent::{DbStats, PersistentDb, PersistentDbConfig};
pub use writebehind::{FlushBatch, WriteBehindBuffer, WriteBehindConfig};
