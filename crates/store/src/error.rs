//! Storage errors.

use std::error::Error;
use std::fmt;

/// Error raised by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Key not present.
    NotFound(String),
    /// The bucket does not exist.
    NoSuchBucket(String),
    /// A bucket with this name already exists.
    BucketExists(String),
    /// A presigned URL failed verification.
    InvalidSignature,
    /// A presigned URL has expired.
    UrlExpired,
    /// The DHT has no members to own the key.
    NoOwner,
    /// The requested DHT node is not a member.
    UnknownNode(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "key not found: '{k}'"),
            StoreError::NoSuchBucket(b) => write!(f, "no such bucket: '{b}'"),
            StoreError::BucketExists(b) => write!(f, "bucket already exists: '{b}'"),
            StoreError::InvalidSignature => write!(f, "presigned url signature mismatch"),
            StoreError::UrlExpired => write!(f, "presigned url expired"),
            StoreError::NoOwner => write!(f, "hash ring has no members"),
            StoreError::UnknownNode(id) => write!(f, "unknown dht node {id}"),
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StoreError::NotFound("a".into()).to_string(),
            "key not found: 'a'"
        );
        assert_eq!(StoreError::UrlExpired.to_string(), "presigned url expired");
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<StoreError>();
    }
}
