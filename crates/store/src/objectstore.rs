//! S3-like object storage for unstructured data.
//!
//! Oparaca stores unstructured object state (multimedia files, …) behind
//! the S3 protocol so any S3-compatible backend works (paper §III-D).
//! This model provides buckets, keyed blobs with metadata and ETags, and
//! prefix listing — enough surface for the platform's unstructured-state
//! support and the presigned-URL flow in [`crate::presign`].

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::sha;
use crate::StoreError;

/// Metadata stored alongside each object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// MIME type (default `application/octet-stream`).
    pub content_type: String,
    /// Hex SHA-256 of the content (the ETag).
    pub etag: String,
    /// Content length in bytes.
    pub size: usize,
}

/// A stored object: payload plus metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// The payload. `Bytes` keeps reads cheap (refcounted slices).
    pub data: Bytes,
    /// Object metadata.
    pub meta: ObjectMeta,
}

/// An in-memory S3-like object store.
///
/// # Examples
///
/// ```
/// use oprc_store::ObjectStore;
/// use bytes::Bytes;
///
/// let mut s3 = ObjectStore::new();
/// s3.create_bucket("images")?;
/// s3.put_object("images", "cat.png", Bytes::from_static(b"png-bytes"), "image/png")?;
/// let obj = s3.get_object("images", "cat.png")?;
/// assert_eq!(&obj.data[..], b"png-bytes");
/// assert_eq!(obj.meta.content_type, "image/png");
/// # Ok::<(), oprc_store::StoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    buckets: BTreeMap<String, BTreeMap<String, StoredObject>>,
    puts: u64,
    gets: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl ObjectStore {
    /// Creates a store with no buckets.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Creates a bucket.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BucketExists`] if the name is taken.
    pub fn create_bucket(&mut self, name: &str) -> Result<(), StoreError> {
        if self.buckets.contains_key(name) {
            return Err(StoreError::BucketExists(name.to_string()));
        }
        self.buckets.insert(name.to_string(), BTreeMap::new());
        Ok(())
    }

    /// True if the bucket exists.
    pub fn bucket_exists(&self, name: &str) -> bool {
        self.buckets.contains_key(name)
    }

    /// Bucket names in order.
    pub fn buckets(&self) -> Vec<&str> {
        self.buckets.keys().map(String::as_str).collect()
    }

    /// Stores an object, returning its metadata (with computed ETag).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoSuchBucket`] for unknown buckets.
    pub fn put_object(
        &mut self,
        bucket: &str,
        key: &str,
        data: Bytes,
        content_type: &str,
    ) -> Result<ObjectMeta, StoreError> {
        let b = self
            .buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        let meta = ObjectMeta {
            content_type: content_type.to_string(),
            etag: sha::to_hex(&sha::sha256(&data)),
            size: data.len(),
        };
        self.puts += 1;
        self.bytes_in += data.len() as u64;
        b.insert(
            key.to_string(),
            StoredObject {
                data,
                meta: meta.clone(),
            },
        );
        Ok(meta)
    }

    /// Fetches an object.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoSuchBucket`] or [`StoreError::NotFound`].
    pub fn get_object(&mut self, bucket: &str, key: &str) -> Result<StoredObject, StoreError> {
        let b = self
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        let obj = b
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(format!("{bucket}/{key}")))?;
        self.gets += 1;
        self.bytes_out += obj.data.len() as u64;
        Ok(obj)
    }

    /// Reads metadata without transferring the payload (S3 `HEAD`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoSuchBucket`] or [`StoreError::NotFound`].
    pub fn head_object(&self, bucket: &str, key: &str) -> Result<ObjectMeta, StoreError> {
        let b = self
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        b.get(key)
            .map(|o| o.meta.clone())
            .ok_or_else(|| StoreError::NotFound(format!("{bucket}/{key}")))
    }

    /// Deletes an object; idempotent (deleting a missing key is `Ok`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoSuchBucket`] for unknown buckets.
    pub fn delete_object(&mut self, bucket: &str, key: &str) -> Result<bool, StoreError> {
        let b = self
            .buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        Ok(b.remove(key).is_some())
    }

    /// Keys in `bucket` starting with `prefix`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoSuchBucket`] for unknown buckets.
    pub fn list_objects(&self, bucket: &str, prefix: &str) -> Result<Vec<String>, StoreError> {
        let b = self
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        Ok(b.range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    /// `(puts, gets, bytes_in, bytes_out)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.puts, self.gets, self.bytes_in, self.bytes_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_bucket() -> ObjectStore {
        let mut s = ObjectStore::new();
        s.create_bucket("b").unwrap();
        s
    }

    #[test]
    fn put_get_head_delete() {
        let mut s = store_with_bucket();
        let meta = s
            .put_object("b", "k", Bytes::from_static(b"hello"), "text/plain")
            .unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.etag.len(), 64);
        let obj = s.get_object("b", "k").unwrap();
        assert_eq!(&obj.data[..], b"hello");
        assert_eq!(s.head_object("b", "k").unwrap(), meta);
        assert!(s.delete_object("b", "k").unwrap());
        assert!(!s.delete_object("b", "k").unwrap()); // idempotent
        assert_eq!(
            s.get_object("b", "k"),
            Err(StoreError::NotFound("b/k".to_string()))
        );
    }

    #[test]
    fn etag_tracks_content() {
        let mut s = store_with_bucket();
        let m1 = s
            .put_object("b", "k", Bytes::from_static(b"v1"), "text/plain")
            .unwrap();
        let m2 = s
            .put_object("b", "k", Bytes::from_static(b"v2"), "text/plain")
            .unwrap();
        assert_ne!(m1.etag, m2.etag);
        let m3 = s
            .put_object("b", "k2", Bytes::from_static(b"v2"), "text/plain")
            .unwrap();
        assert_eq!(m2.etag, m3.etag);
    }

    #[test]
    fn bucket_lifecycle() {
        let mut s = ObjectStore::new();
        s.create_bucket("x").unwrap();
        assert_eq!(
            s.create_bucket("x"),
            Err(StoreError::BucketExists("x".to_string()))
        );
        assert!(s.bucket_exists("x"));
        assert!(!s.bucket_exists("y"));
        assert_eq!(
            s.get_object("y", "k"),
            Err(StoreError::NoSuchBucket("y".to_string()))
        );
        assert_eq!(s.buckets(), vec!["x"]);
    }

    #[test]
    fn list_with_prefix() {
        let mut s = store_with_bucket();
        for k in ["img/a", "img/b", "vid/a"] {
            s.put_object("b", k, Bytes::new(), "application/octet-stream")
                .unwrap();
        }
        assert_eq!(s.list_objects("b", "img/").unwrap(), vec!["img/a", "img/b"]);
        assert_eq!(s.list_objects("b", "").unwrap().len(), 3);
        assert!(s.list_objects("b", "zzz").unwrap().is_empty());
    }

    #[test]
    fn stats_count_traffic() {
        let mut s = store_with_bucket();
        s.put_object("b", "k", Bytes::from_static(b"12345678"), "x")
            .unwrap();
        s.get_object("b", "k").unwrap();
        s.get_object("b", "k").unwrap();
        let (puts, gets, bin, bout) = s.stats();
        assert_eq!((puts, gets), (1, 2));
        assert_eq!(bin, 8);
        assert_eq!(bout, 16);
    }
}
