//! Presigned URLs for secret-free object access.
//!
//! "Oparaca employs the *presigned URL technique* to directly allow the
//! developer's code access to the file in object storage without sharing
//! the secret key and avoiding leaking sensitive information" (§III-D).
//!
//! The platform holds the secret; user functions receive a URL whose
//! query string carries an expiry and an HMAC-SHA-256 signature over
//! `(method, bucket, key, expires)`. The store verifies the signature and
//! the expiry before serving the request — possession of the URL grants
//! exactly one `(method, object)` capability until it expires.

use oprc_simcore::SimTime;

use crate::sha;
use crate::StoreError;

/// HTTP-style access method a URL grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read the object.
    Get,
    /// Write (create/replace) the object.
    Put,
}

impl Method {
    fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Put => "PUT",
        }
    }

    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "PUT" => Some(Method::Put),
            _ => None,
        }
    }
}

/// A presigned URL: printable form plus parsed fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresignedUrl {
    /// The full URL string handed to user code.
    pub url: String,
    /// Granted method.
    pub method: Method,
    /// Target bucket.
    pub bucket: String,
    /// Target key.
    pub key: String,
    /// Expiry instant (simulation clock).
    pub expires: SimTime,
}

fn string_to_sign(method: Method, bucket: &str, key: &str, expires: SimTime) -> String {
    format!(
        "{}\n{}\n{}\n{}",
        method.as_str(),
        bucket,
        key,
        expires.as_nanos()
    )
}

/// Signs `(method, bucket, key)` until `expires` with `secret`.
///
/// # Examples
///
/// ```
/// use oprc_store::presign::{presign, verify, Method};
/// use oprc_simcore::SimTime;
///
/// let url = presign(b"secret", Method::Get, "images", "cat.png", SimTime::from_secs(60));
/// assert!(verify(b"secret", &url.url, SimTime::from_secs(30)).is_ok());
/// assert!(verify(b"secret", &url.url, SimTime::from_secs(61)).is_err());
/// assert!(verify(b"other", &url.url, SimTime::from_secs(30)).is_err());
/// ```
pub fn presign(
    secret: &[u8],
    method: Method,
    bucket: &str,
    key: &str,
    expires: SimTime,
) -> PresignedUrl {
    let signature = sha::to_hex(&sha::hmac_sha256(
        secret,
        string_to_sign(method, bucket, key, expires).as_bytes(),
    ));
    let url = format!(
        "s3://{bucket}/{key}?method={}&expires={}&signature={signature}",
        method.as_str(),
        expires.as_nanos()
    );
    PresignedUrl {
        url,
        method,
        bucket: bucket.to_string(),
        key: key.to_string(),
        expires,
    }
}

/// Parses and verifies a presigned URL at time `now`.
///
/// Returns the granted capability on success.
///
/// # Errors
///
/// - [`StoreError::InvalidSignature`] for malformed URLs, unknown
///   methods, or signature mismatches (a tampered bucket/key/expiry also
///   lands here, since the signature covers all of them);
/// - [`StoreError::UrlExpired`] when `now` is past the expiry.
pub fn verify(secret: &[u8], url: &str, now: SimTime) -> Result<PresignedUrl, StoreError> {
    let rest = url
        .strip_prefix("s3://")
        .ok_or(StoreError::InvalidSignature)?;
    let (path, query) = rest.split_once('?').ok_or(StoreError::InvalidSignature)?;
    let (bucket, key) = path.split_once('/').ok_or(StoreError::InvalidSignature)?;

    let mut method = None;
    let mut expires = None;
    let mut signature = None;
    for pair in query.split('&') {
        match pair.split_once('=') {
            Some(("method", v)) => method = Method::parse(v),
            Some(("expires", v)) => expires = v.parse::<u64>().ok().map(SimTime::from_nanos),
            Some(("signature", v)) => signature = Some(v.to_string()),
            _ => return Err(StoreError::InvalidSignature),
        }
    }
    let (Some(method), Some(expires), Some(signature)) = (method, expires, signature) else {
        return Err(StoreError::InvalidSignature);
    };

    let expected = sha::hmac_sha256(
        secret,
        string_to_sign(method, bucket, key, expires).as_bytes(),
    );
    let provided = sha::from_hex(&signature).ok_or(StoreError::InvalidSignature)?;
    if !sha::digests_equal(&expected, &provided) {
        return Err(StoreError::InvalidSignature);
    }
    if now > expires {
        return Err(StoreError::UrlExpired);
    }
    Ok(PresignedUrl {
        url: url.to_string(),
        method,
        bucket: bucket.to_string(),
        key: key.to_string(),
        expires,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: &[u8] = b"platform-secret";

    fn url() -> PresignedUrl {
        presign(
            SECRET,
            Method::Put,
            "videos",
            "movie.mp4",
            SimTime::from_secs(300),
        )
    }

    #[test]
    fn round_trip_grants_capability() {
        let u = url();
        let cap = verify(SECRET, &u.url, SimTime::from_secs(299)).unwrap();
        assert_eq!(cap.method, Method::Put);
        assert_eq!(cap.bucket, "videos");
        assert_eq!(cap.key, "movie.mp4");
        assert_eq!(cap.expires, SimTime::from_secs(300));
    }

    #[test]
    fn expiry_enforced_inclusive() {
        let u = url();
        assert!(verify(SECRET, &u.url, SimTime::from_secs(300)).is_ok());
        assert_eq!(
            verify(SECRET, &u.url, SimTime::from_nanos(300_000_000_001)),
            Err(StoreError::UrlExpired)
        );
    }

    #[test]
    fn wrong_secret_rejected() {
        let u = url();
        assert_eq!(
            verify(b"wrong", &u.url, SimTime::ZERO),
            Err(StoreError::InvalidSignature)
        );
    }

    #[test]
    fn tampering_rejected() {
        let u = url();
        let tampered_key = u.url.replace("movie.mp4", "other.mp4");
        assert_eq!(
            verify(SECRET, &tampered_key, SimTime::ZERO),
            Err(StoreError::InvalidSignature)
        );
        let tampered_method = u.url.replace("method=PUT", "method=GET");
        assert_eq!(
            verify(SECRET, &tampered_method, SimTime::ZERO),
            Err(StoreError::InvalidSignature)
        );
        // Extending the expiry invalidates the signature too.
        let tampered_expiry = u
            .url
            .replace("expires=300000000000", "expires=900000000000");
        assert_eq!(
            verify(SECRET, &tampered_expiry, SimTime::ZERO),
            Err(StoreError::InvalidSignature)
        );
    }

    #[test]
    fn malformed_urls_rejected() {
        for bad in [
            "http://not-s3/x?y=z",
            "s3://nopath",
            "s3://b/k",
            "s3://b/k?method=GET",
            "s3://b/k?method=DELETE&expires=1&signature=00",
            "s3://b/k?method=GET&expires=NaN&signature=00",
            "s3://b/k?method=GET&expires=1&signature=xyz",
            "s3://b/k?method=GET&expires=1&signature=0f0",
            "s3://b/k?method=GET&expires=1&signature=00&extra=1",
        ] {
            assert_eq!(
                verify(SECRET, bad, SimTime::ZERO),
                Err(StoreError::InvalidSignature),
                "should reject {bad}"
            );
        }
    }

    #[test]
    fn url_contains_no_secret_material() {
        let u = url();
        assert!(!u.url.contains("platform-secret"));
        // The signature is a MAC, not the secret; revealing it is safe.
        assert!(u.url.contains("signature="));
    }

    #[test]
    fn keys_with_slashes_work() {
        let u = presign(SECRET, Method::Get, "b", "a/b/c.bin", SimTime::from_secs(1));
        let cap = verify(SECRET, &u.url, SimTime::ZERO).unwrap();
        assert_eq!(cap.key, "a/b/c.bin");
    }
}
