//! The key-value storage interface.

use std::collections::BTreeMap;

use oprc_value::Value;

/// Key-value storage of structured object state.
///
/// Keys are UTF-8 strings (the platform uses `class/object-id` layouts);
/// values are [`Value`] documents. Implementations must be deterministic:
/// `scan_prefix` returns keys in lexicographic order.
pub trait KvStore {
    /// Returns the value for `key`, if present.
    fn get(&self, key: &str) -> Option<Value>;

    /// Stores `value` under `key`, returning the previous value.
    fn put(&mut self, key: &str, value: Value) -> Option<Value>;

    /// Removes `key`, returning the stored value.
    fn delete(&mut self, key: &str) -> Option<Value>;

    /// True if `key` is present.
    fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key
    /// order.
    fn scan_prefix(&self, prefix: &str) -> Vec<(String, Value)>;

    /// Number of stored records.
    fn len(&self) -> usize;

    /// True if the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A plain in-memory [`KvStore`] on a [`BTreeMap`].
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    data: BTreeMap<String, Value>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Total approximate bytes stored (keys + values).
    pub fn approx_bytes(&self) -> usize {
        self.data
            .iter()
            .map(|(k, v)| k.len() + v.approx_size())
            .sum()
    }
}

impl KvStore for MemStore {
    fn get(&self, key: &str) -> Option<Value> {
        self.data.get(key).cloned()
    }

    fn put(&mut self, key: &str, value: Value) -> Option<Value> {
        self.data.insert(key.to_string(), value)
    }

    fn delete(&mut self, key: &str) -> Option<Value> {
        self.data.remove(key)
    }

    fn scan_prefix(&self, prefix: &str) -> Vec<(String, Value)> {
        self.data
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oprc_value::vjson;

    #[test]
    fn put_get_delete() {
        let mut s = MemStore::new();
        assert_eq!(s.put("a", vjson!(1)), None);
        assert_eq!(s.put("a", vjson!(2)), Some(vjson!(1)));
        assert_eq!(s.get("a"), Some(vjson!(2)));
        assert!(s.contains("a"));
        assert_eq!(s.delete("a"), Some(vjson!(2)));
        assert_eq!(s.get("a"), None);
        assert!(s.is_empty());
    }

    #[test]
    fn scan_prefix_ordered() {
        let mut s = MemStore::new();
        for k in ["img/2", "img/1", "img/10", "vid/1"] {
            s.put(k, vjson!(true));
        }
        let keys: Vec<String> = s.scan_prefix("img/").into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["img/1", "img/10", "img/2"]);
        assert!(s.scan_prefix("zzz").is_empty());
        assert_eq!(s.scan_prefix("").len(), 4);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut s = MemStore::new();
        let empty = s.approx_bytes();
        s.put("key", vjson!({"payload": "0123456789"}));
        assert!(s.approx_bytes() > empty + 10);
    }
}
