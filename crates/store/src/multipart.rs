//! S3-style multipart uploads.
//!
//! The paper's motivating workloads move multimedia files (§I, §III-D);
//! real S3 clients upload anything large in parts. This module models
//! the three-call protocol: *initiate* → *upload part(s)* → *complete*
//! (or *abort*), with part-order independence and ETag verification on
//! complete, matching the AWS semantics closely enough for clients
//! written against the real protocol to port.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};

use crate::sha;
use crate::{ObjectMeta, ObjectStore, StoreError};

/// Identifier of an in-progress multipart upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UploadId(u64);

impl std::fmt::Display for UploadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "upload-{}", self.0)
    }
}

#[derive(Debug)]
struct PendingUpload {
    bucket: String,
    key: String,
    content_type: String,
    /// part number → (etag, data)
    parts: BTreeMap<u32, (String, Bytes)>,
}

/// Multipart-upload state layered over an [`ObjectStore`].
///
/// # Examples
///
/// ```
/// use oprc_store::{multipart::MultipartUploads, ObjectStore};
/// use bytes::Bytes;
///
/// let mut store = ObjectStore::new();
/// store.create_bucket("vids")?;
/// let mut uploads = MultipartUploads::new();
/// let id = uploads.initiate("vids", "movie.bin", "video/raw")?;
/// let e2 = uploads.upload_part(id, 2, Bytes::from_static(b"world"))?;
/// let e1 = uploads.upload_part(id, 1, Bytes::from_static(b"hello "))?;
/// let meta = uploads.complete(id, &[(1, e1), (2, e2)], &mut store)?;
/// assert_eq!(meta.size, 11);
/// assert_eq!(&store.get_object("vids", "movie.bin")?.data[..], b"hello world");
/// # Ok::<(), oprc_store::StoreError>(())
/// ```
#[derive(Debug, Default)]
pub struct MultipartUploads {
    next: u64,
    pending: BTreeMap<UploadId, PendingUpload>,
}

impl MultipartUploads {
    /// Creates an empty upload tracker.
    pub fn new() -> Self {
        MultipartUploads::default()
    }

    /// Starts a multipart upload, returning its id.
    ///
    /// # Errors
    ///
    /// Currently infallible but typed for protocol parity; bucket
    /// existence is checked at [`MultipartUploads::complete`], matching
    /// S3's late binding.
    pub fn initiate(
        &mut self,
        bucket: &str,
        key: &str,
        content_type: &str,
    ) -> Result<UploadId, StoreError> {
        let id = UploadId(self.next);
        self.next += 1;
        self.pending.insert(
            id,
            PendingUpload {
                bucket: bucket.to_string(),
                key: key.to_string(),
                content_type: content_type.to_string(),
                parts: BTreeMap::new(),
            },
        );
        Ok(id)
    }

    /// Uploads (or replaces) one part, returning its ETag.
    ///
    /// Parts may arrive in any order and numbers may be sparse.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] for unknown upload ids.
    pub fn upload_part(
        &mut self,
        id: UploadId,
        part_number: u32,
        data: Bytes,
    ) -> Result<String, StoreError> {
        let upload = self
            .pending
            .get_mut(&id)
            .ok_or_else(|| StoreError::NotFound(id.to_string()))?;
        let etag = sha::to_hex(&sha::sha256(&data));
        upload.parts.insert(part_number, (etag.clone(), data));
        Ok(etag)
    }

    /// Completes the upload: verifies the client's part manifest
    /// against what was uploaded, concatenates in part-number order, and
    /// stores the object.
    ///
    /// # Errors
    ///
    /// - [`StoreError::NotFound`] for unknown upload ids or manifest
    ///   entries never uploaded;
    /// - [`StoreError::InvalidSignature`] when a manifest ETag does not
    ///   match the uploaded part;
    /// - [`StoreError::NoSuchBucket`] when the target bucket vanished.
    pub fn complete(
        &mut self,
        id: UploadId,
        manifest: &[(u32, String)],
        store: &mut ObjectStore,
    ) -> Result<ObjectMeta, StoreError> {
        let upload = self
            .pending
            .get(&id)
            .ok_or_else(|| StoreError::NotFound(id.to_string()))?;
        let mut assembled = BytesMut::new();
        for (number, expected_etag) in manifest {
            let (etag, data) = upload
                .parts
                .get(number)
                .ok_or_else(|| StoreError::NotFound(format!("{id} part {number}")))?;
            if etag != expected_etag {
                return Err(StoreError::InvalidSignature);
            }
            assembled.extend_from_slice(data);
        }
        let upload = self.pending.remove(&id).expect("checked above");
        store.put_object(
            &upload.bucket,
            &upload.key,
            assembled.freeze(),
            &upload.content_type,
        )
    }

    /// Abandons an upload, discarding its parts.
    ///
    /// Returns `true` if the upload existed.
    pub fn abort(&mut self, id: UploadId) -> bool {
        self.pending.remove(&id).is_some()
    }

    /// In-progress upload count.
    pub fn in_progress(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ObjectStore, MultipartUploads) {
        let mut s = ObjectStore::new();
        s.create_bucket("b").unwrap();
        (s, MultipartUploads::new())
    }

    #[test]
    fn parts_assemble_in_number_order() {
        let (mut store, mut up) = setup();
        let id = up.initiate("b", "k", "application/octet-stream").unwrap();
        let e3 = up.upload_part(id, 3, Bytes::from_static(b"!")).unwrap();
        let e1 = up.upload_part(id, 1, Bytes::from_static(b"ab")).unwrap();
        let e2 = up.upload_part(id, 2, Bytes::from_static(b"cd")).unwrap();
        let meta = up
            .complete(id, &[(1, e1), (2, e2), (3, e3)], &mut store)
            .unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(&store.get_object("b", "k").unwrap().data[..], b"abcd!");
        assert_eq!(up.in_progress(), 0);
    }

    #[test]
    fn part_replacement_takes_latest() {
        let (mut store, mut up) = setup();
        let id = up.initiate("b", "k", "t").unwrap();
        up.upload_part(id, 1, Bytes::from_static(b"old")).unwrap();
        let e = up.upload_part(id, 1, Bytes::from_static(b"new")).unwrap();
        up.complete(id, &[(1, e)], &mut store).unwrap();
        assert_eq!(&store.get_object("b", "k").unwrap().data[..], b"new");
    }

    #[test]
    fn etag_mismatch_rejected() {
        let (mut store, mut up) = setup();
        let id = up.initiate("b", "k", "t").unwrap();
        up.upload_part(id, 1, Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            up.complete(id, &[(1, "bogus".to_string())], &mut store),
            Err(StoreError::InvalidSignature)
        );
        // The upload survives a failed complete.
        assert_eq!(up.in_progress(), 1);
    }

    #[test]
    fn missing_part_and_unknown_upload() {
        let (mut store, mut up) = setup();
        let id = up.initiate("b", "k", "t").unwrap();
        assert!(matches!(
            up.complete(id, &[(1, "e".into())], &mut store),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            up.upload_part(UploadId(99), 1, Bytes::new()),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn abort_discards() {
        let (_, mut up) = setup();
        let id = up.initiate("b", "k", "t").unwrap();
        up.upload_part(id, 1, Bytes::from_static(b"x")).unwrap();
        assert!(up.abort(id));
        assert!(!up.abort(id));
        assert_eq!(up.in_progress(), 0);
    }

    #[test]
    fn manifest_may_select_part_subset() {
        let (mut store, mut up) = setup();
        let id = up.initiate("b", "k", "t").unwrap();
        let e1 = up.upload_part(id, 1, Bytes::from_static(b"keep")).unwrap();
        up.upload_part(id, 2, Bytes::from_static(b"drop")).unwrap();
        up.complete(id, &[(1, e1)], &mut store).unwrap();
        assert_eq!(&store.get_object("b", "k").unwrap().data[..], b"keep");
    }

    #[test]
    fn missing_bucket_fails_at_complete() {
        let mut store = ObjectStore::new(); // no bucket
        let mut up = MultipartUploads::new();
        let id = up.initiate("ghost", "k", "t").unwrap();
        let e = up.upload_part(id, 1, Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            up.complete(id, &[(1, e)], &mut store),
            Err(StoreError::NoSuchBucket("ghost".to_string()))
        );
    }
}
