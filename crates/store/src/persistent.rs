//! The persistent database with a modelled write budget.
//!
//! In the paper's evaluation the external database's write throughput is
//! the shared bottleneck: "the throughput of Knative plateaus after
//! reaching 6 VMs [...] attributed to the database write operation
//! throughput bottleneck" (§V). `PersistentDb` is a real KV store whose
//! *admission times* are governed by a token bucket of write operations
//! per second, so a DES harness can ask "when would this write (or batch)
//! become durable?" while the data itself is stored for functional tests.
//!
//! A batch of N records costs **one** write operation plus a small
//! per-record increment — this is exactly the amortization that lets
//! Oparaca's write-behind batching outrun the direct-write baseline.

use oprc_simcore::queueing::TokenBucket;
use oprc_simcore::SimTime;
use oprc_value::Value;

use crate::{KvStore, MemStore};

/// Tunables for [`PersistentDb`].
#[derive(Debug, Clone, PartialEq)]
pub struct PersistentDbConfig {
    /// Write operations per second the backend sustains.
    pub write_ops_per_sec: f64,
    /// Burst capacity in write operations.
    pub write_burst: f64,
    /// Extra cost per record in a batch, in fractions of a write op.
    ///
    /// A batch of N records costs `1 + (N-1) * batch_record_cost` ops.
    /// `0.0` means batching is free beyond the first record; `1.0`
    /// degenerates to per-record writes.
    pub batch_record_cost: f64,
}

impl Default for PersistentDbConfig {
    fn default() -> Self {
        PersistentDbConfig {
            write_ops_per_sec: 4_000.0,
            write_burst: 400.0,
            batch_record_cost: 0.02,
        }
    }
}

/// Write-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Individual `put` operations admitted.
    pub single_writes: u64,
    /// Batched write operations admitted.
    pub batch_writes: u64,
    /// Records written via batches.
    pub batch_records: u64,
}

/// A durable KV store with write-throughput admission control.
///
/// Reads are unconstrained (the evaluation workload is write-bound).
///
/// # Examples
///
/// ```
/// use oprc_store::{PersistentDb, PersistentDbConfig};
/// use oprc_simcore::SimTime;
/// use oprc_value::vjson;
///
/// let mut db = PersistentDb::new(PersistentDbConfig {
///     write_ops_per_sec: 100.0,
///     write_burst: 1.0,
///     batch_record_cost: 0.0,
/// });
/// let t1 = db.put(SimTime::ZERO, "k1", vjson!(1));
/// let t2 = db.put(SimTime::ZERO, "k2", vjson!(2));
/// assert_eq!(t1, SimTime::ZERO);
/// assert!(t2 > t1, "second write waits for the write budget");
/// ```
#[derive(Debug, Clone)]
pub struct PersistentDb {
    cfg: PersistentDbConfig,
    bucket: TokenBucket,
    data: MemStore,
    stats: DbStats,
}

impl PersistentDb {
    /// Creates a database with the given write budget.
    pub fn new(cfg: PersistentDbConfig) -> Self {
        let bucket = TokenBucket::new(cfg.write_ops_per_sec, cfg.write_burst.max(1.0));
        PersistentDb {
            cfg,
            bucket,
            data: MemStore::new(),
            stats: DbStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PersistentDbConfig {
        &self.cfg
    }

    /// Write statistics so far.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Reads a record (no admission cost).
    pub fn get(&self, key: &str) -> Option<Value> {
        self.data.get(key)
    }

    /// Number of durable records.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no records are durable yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes one record at `now`, returning when it becomes durable
    /// under the write budget.
    pub fn put(&mut self, now: SimTime, key: &str, value: impl Into<Value>) -> SimTime {
        let durable_at = self.bucket.acquire(now, 1.0);
        self.data.put(key, value.into());
        self.stats.single_writes += 1;
        durable_at
    }

    /// Writes a batch of records as one consolidated operation,
    /// returning when the batch becomes durable.
    ///
    /// An empty batch is free and durable immediately.
    /// Records are accepted as anything convertible to [`Value`] —
    /// in particular the write-behind buffer's [`oprc_value::Snapshot`]s,
    /// which materialise here (the one unavoidable copy per flushed key,
    /// off the invocation hot path, when the in-memory tier still shares
    /// the snapshot).
    pub fn put_batch<V: Into<Value>>(
        &mut self,
        now: SimTime,
        records: impl IntoIterator<Item = (String, V)>,
    ) -> SimTime {
        let mut n = 0u64;
        for (k, v) in records {
            self.data.put(&k, v.into());
            n += 1;
        }
        if n == 0 {
            return now;
        }
        let cost = 1.0 + (n - 1) as f64 * self.cfg.batch_record_cost;
        let durable_at = self.bucket.acquire(now, cost);
        self.stats.batch_writes += 1;
        self.stats.batch_records += n;
        durable_at
    }

    /// Records with keys starting with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, Value)> {
        self.data.scan_prefix(prefix)
    }
}

impl Default for PersistentDb {
    fn default() -> Self {
        PersistentDb::new(PersistentDbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oprc_value::vjson;

    fn db(rate: f64, burst: f64, per_record: f64) -> PersistentDb {
        PersistentDb::new(PersistentDbConfig {
            write_ops_per_sec: rate,
            write_burst: burst,
            batch_record_cost: per_record,
        })
    }

    #[test]
    fn writes_are_stored_and_readable() {
        let mut d = db(1000.0, 10.0, 0.0);
        d.put(SimTime::ZERO, "a", vjson!({"x": 1}));
        assert_eq!(d.get("a").unwrap()["x"].as_i64(), Some(1));
        assert_eq!(d.len(), 1);
        assert!(d.get("missing").is_none());
    }

    #[test]
    fn write_budget_throttles_singles() {
        let mut d = db(10.0, 1.0, 0.0);
        let mut last = SimTime::ZERO;
        for i in 0..21 {
            last = d.put(SimTime::ZERO, &format!("k{i}"), vjson!(i));
        }
        // 21 writes at 10/s with burst 1 → last durable at ~2s.
        assert!((last.as_secs_f64() - 2.0).abs() < 0.01, "{last}");
        assert_eq!(d.stats().single_writes, 21);
    }

    #[test]
    fn batches_amortize_the_budget() {
        // Direct: 1000 records at 100 ops/s → 10s.
        let mut direct = db(100.0, 1.0, 0.0);
        let mut last_direct = SimTime::ZERO;
        for i in 0..1000 {
            last_direct = direct.put(SimTime::ZERO, &format!("k{i}"), vjson!(i));
        }
        // Batched (100/batch, free records): 10 ops → durable almost
        // immediately.
        let mut batched = db(100.0, 1.0, 0.0);
        let mut last_batch = SimTime::ZERO;
        for b in 0..10 {
            let recs: Vec<(String, Value)> =
                (0..100).map(|i| (format!("k{b}-{i}"), vjson!(i))).collect();
            last_batch = batched.put_batch(SimTime::ZERO, recs);
        }
        assert!(last_batch.as_secs_f64() < last_direct.as_secs_f64() / 20.0);
        assert_eq!(batched.len(), 1000);
        assert_eq!(batched.stats().batch_writes, 10);
        assert_eq!(batched.stats().batch_records, 1000);
    }

    #[test]
    fn batch_record_cost_scales() {
        // cost = 1 + 99*1.0 = 100 ops per 100-record batch → same as
        // direct writes.
        let mut d = db(100.0, 1.0, 1.0);
        let recs: Vec<(String, Value)> = (0..100).map(|i| (format!("k{i}"), vjson!(i))).collect();
        let t = d.put_batch(SimTime::ZERO, recs);
        assert!((t.as_secs_f64() - 0.99).abs() < 0.02, "{t}");
    }

    #[test]
    fn empty_batch_is_free() {
        let mut d = db(1.0, 1.0, 0.0);
        let t = d.put_batch(SimTime::from_secs(5), Vec::<(String, Value)>::new());
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(d.stats().batch_writes, 0);
    }

    #[test]
    fn scan_prefix_delegates() {
        let mut d = PersistentDb::default();
        d.put(SimTime::ZERO, "a/1", vjson!(1));
        d.put(SimTime::ZERO, "a/2", vjson!(2));
        d.put(SimTime::ZERO, "b/1", vjson!(3));
        assert_eq!(d.scan_prefix("a/").len(), 2);
    }
}
