//! Property-based tests for the storage substrates.

use std::collections::BTreeMap;

use oprc_simcore::{SimDuration, SimTime};
use oprc_store::{
    Dht, DhtConfig, DhtNodeId, HashRing, PersistentDb, PersistentDbConfig, WriteBehindBuffer,
    WriteBehindConfig,
};
use oprc_value::{vjson, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adding a member to a consistent-hash ring moves only keys that
    /// now belong to the new member, and roughly its fair share.
    #[test]
    fn ring_join_moves_bounded_fair_share(members in 2u64..10, keys in 200usize..400) {
        let mut before = HashRing::new(64);
        for m in 0..members {
            before.add(m);
        }
        let mut after = before.clone();
        let newcomer = members;
        after.add(newcomer);
        let mut moved = 0;
        for i in 0..keys {
            let k = format!("key-{i}");
            let a = before.owner(&k).unwrap();
            let b = after.owner(&k).unwrap();
            if a != b {
                prop_assert_eq!(b, newcomer, "keys may only move to the newcomer");
                moved += 1;
            }
        }
        // Fair share is keys/(members+1); allow generous slack for vnode
        // variance.
        let fair = keys as f64 / (members + 1) as f64;
        prop_assert!(
            (moved as f64) < fair * 2.5 + 12.0,
            "moved {moved}, fair share {fair:.0}"
        );
    }

    /// After arbitrary join/leave/put sequences, every key is readable
    /// and lives on exactly its owner set.
    #[test]
    fn dht_ownership_invariant_under_churn(
        ops in prop::collection::vec((0u8..4, any::<u16>()), 1..60),
    ) {
        let mut dht = Dht::new(DhtConfig { replication: 2, vnodes: 16 });
        dht.join(DhtNodeId(0));
        let mut next_member = 1u64;
        let mut live = vec![0u64];
        let mut expected: BTreeMap<String, i64> = BTreeMap::new();
        for (op, x) in ops {
            match op {
                0 => {
                    dht.join(DhtNodeId(next_member));
                    live.push(next_member);
                    next_member += 1;
                }
                1 if live.len() > 1 => {
                    let victim = live.remove(x as usize % live.len());
                    dht.leave(DhtNodeId(victim));
                }
                _ => {
                    let key = format!("k{}", x % 50);
                    dht.put(&key, vjson!(x as i64)).unwrap();
                    expected.insert(key, x as i64);
                }
            }
        }
        for (key, val) in &expected {
            prop_assert_eq!(
                dht.get(key).and_then(|v| v.as_i64()),
                Some(*val),
                "lost {} after churn", key
            );
        }
    }

    /// Write-behind: drain returns each dirty key exactly once with its
    /// latest value, regardless of offer interleaving.
    #[test]
    fn writebehind_exactly_once_latest_value(
        offers in prop::collection::vec((0u8..10, any::<i32>()), 1..100),
        batch in 1usize..20,
    ) {
        let mut buf = WriteBehindBuffer::new(WriteBehindConfig {
            max_batch: batch,
            max_delay: SimDuration::from_millis(1),
        });
        let mut latest: BTreeMap<String, i32> = BTreeMap::new();
        for (i, (k, v)) in offers.iter().enumerate() {
            let key = format!("k{k}");
            buf.offer(SimTime::from_nanos(i as u64), &key, vjson!(*v as i64));
            latest.insert(key, *v);
        }
        let mut seen: BTreeMap<String, i64> = BTreeMap::new();
        loop {
            let b = buf.drain(batch);
            if b.is_empty() {
                break;
            }
            for (k, v) in b.records {
                prop_assert!(!seen.contains_key(&k), "duplicate flush of {k}");
                seen.insert(k, v.as_i64().unwrap());
            }
        }
        prop_assert_eq!(seen.len(), latest.len());
        for (k, v) in latest {
            prop_assert_eq!(seen[&k], v as i64);
        }
        prop_assert_eq!(buf.pending_len(), 0);
    }

    /// The DB write budget: N sequential writes finish no earlier than
    /// the rate allows, and batches never finish later than the
    /// equivalent singles.
    #[test]
    fn db_admission_rate_bound(n in 10u64..200, rate in 50.0f64..500.0) {
        let mk = || PersistentDb::new(PersistentDbConfig {
            write_ops_per_sec: rate,
            write_burst: 1.0,
            batch_record_cost: 0.1,
        });
        let mut singles = mk();
        let mut last_single = SimTime::ZERO;
        for i in 0..n {
            last_single = singles.put(SimTime::ZERO, &format!("k{i}"), vjson!(1));
        }
        // Lower bound: (n - burst) ops at `rate`.
        let min_secs = (n as f64 - 1.0) / rate;
        prop_assert!(
            last_single.as_secs_f64() >= min_secs - 1e-6,
            "{} < {}", last_single.as_secs_f64(), min_secs
        );
        let mut batched = mk();
        let records: Vec<(String, Value)> =
            (0..n).map(|i| (format!("k{i}"), vjson!(1))).collect();
        let batch_done = batched.put_batch(SimTime::ZERO, records);
        prop_assert!(batch_done <= last_single, "batch must not be slower");
    }
}
