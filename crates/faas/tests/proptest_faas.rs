//! Property-based tests for the FaaS engine models.

use oprc_faas::{
    Autoscaler, AutoscalerConfig, EngineConfig, EngineKind, EngineModel, FunctionSpec,
};
use oprc_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Completions are causal (end ≥ start ≥ arrival) and monotone
    /// under monotone arrivals, for any replica/concurrency shape.
    #[test]
    fn engine_completions_causal(
        arrivals in prop::collection::vec(0u64..10_000, 1..80),
        replicas in 1u32..6,
        concurrency in 1u32..4,
        service_us in 100u64..5_000,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let mut engine = EngineModel::new(
            EngineKind::PlainDeployment,
            EngineConfig::default(),
            FunctionSpec::new("f").container_concurrency(concurrency),
        );
        engine.force_replicas(SimTime::ZERO, replicas, SimDuration::ZERO);
        let service = SimDuration::from_micros(service_us);
        let mut last_end = SimTime::ZERO;
        for &a in &arrivals {
            let arrival = SimTime::from_micros(a);
            let c = engine.on_request(arrival, service).expect("replicas exist");
            prop_assert!(c.start >= arrival);
            prop_assert_eq!(c.end, c.start + service);
            last_end = last_end.max(c.end);
        }
        prop_assert_eq!(engine.requests(), arrivals.len() as u64);
        // Work conservation: finishing all jobs cannot beat perfect
        // parallelism across every concurrency slot.
        let slots = (replicas * concurrency) as u64;
        let total_work = service.as_nanos() * arrivals.len() as u64;
        let ideal = SimTime::from_micros(arrivals[0])
            + SimDuration::from_nanos(total_work / slots);
        prop_assert!(last_end >= ideal || arrivals.len() as u64 <= slots,
            "finished {last_end} before the parallel bound {ideal}");
        // The engine drains to idle.
        prop_assert_eq!(engine.concurrency(SimTime::from_secs(10_000)), 0);
    }

    /// The autoscaler's recommendation is bounded: never negative,
    /// never beyond the rate limit, and zero only after sustained
    /// inactivity.
    #[test]
    fn autoscaler_recommendation_bounded(
        samples in prop::collection::vec(0.0f64..200.0, 1..120),
        target in 1.0f64..16.0,
    ) {
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            target_concurrency: target,
            ..AutoscalerConfig::default()
        });
        let mut current = 1u32;
        for (i, &conc) in samples.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            scaler.observe(now, conc);
            let desired = scaler.desired(now, current);
            // Rate limit: at most max_scale_up_rate × current.
            let cap = ((current.max(1) as f64) * 1000.0) as u32;
            prop_assert!(desired <= cap.max(1));
            // Zero only when recent activity is zero.
            if desired == 0 {
                prop_assert!(conc == 0.0, "scaled to zero under load");
            }
            current = desired.clamp(1, 64);
        }
    }

    /// Knative engines never reject while capacity exists; plain
    /// deployments reject exactly when they have no replicas.
    #[test]
    fn rejection_semantics(kind_knative in any::<bool>(), n in 1u32..30) {
        let kind = if kind_knative {
            EngineKind::Knative
        } else {
            EngineKind::PlainDeployment
        };
        let mut engine = EngineModel::new(
            kind,
            EngineConfig::default(),
            FunctionSpec::new("f"),
        );
        engine.set_capacity_limit(n);
        let out = engine.on_request(SimTime::ZERO, SimDuration::from_millis(1));
        match kind {
            EngineKind::Knative => {
                prop_assert!(out.is_some(), "knative buffers via the activator");
                prop_assert_eq!(engine.cold_starts(), 1);
            }
            EngineKind::PlainDeployment => {
                prop_assert!(out.is_none(), "no standing replicas → reject");
                prop_assert_eq!(engine.rejected(), 1);
            }
        }
    }
}
