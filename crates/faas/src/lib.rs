//! FaaS engine models.
//!
//! Oparaca offloads pure-function invocation tasks to a code-execution
//! runtime over RPC (paper §III-C). The paper evaluates three execution
//! substrates (§V):
//!
//! - **Knative** — revisions with a concurrency-targeting autoscaler
//!   (stable/panic windows), an activator that buffers requests while
//!   scaled to zero, per-request queue-proxy overhead, and cold starts;
//! - **plain Kubernetes deployments** (the `oprc-bypass` variants) — a
//!   fixed replica set with no serverless dataplane overhead;
//!
//! This crate models both behind one type, [`EngineModel`], parameterized
//! by [`EngineKind`]. The model is driven by a DES harness: the harness
//! calls [`EngineModel::on_request`] per arrival and
//! [`EngineModel::on_tick`] per autoscaler period, and applies the
//! returned [`ScaleAction`]s through whatever replica-capacity authority
//! it has (the cluster substrate, in `oprc-platform`).
//!
//! # Examples
//!
//! ```
//! use oprc_faas::{EngineConfig, EngineKind, EngineModel, FunctionSpec};
//! use oprc_simcore::{SimDuration, SimTime};
//!
//! let spec = FunctionSpec::new("jsonrand").container_concurrency(4);
//! let mut engine = EngineModel::new(EngineKind::Knative, EngineConfig::default(), spec);
//! engine.force_replicas(SimTime::ZERO, 1, SimDuration::ZERO);
//!
//! let done = engine
//!     .on_request(SimTime::ZERO, SimDuration::from_millis(5))
//!     .expect("a replica is available");
//! assert_eq!(done.end, SimTime::from_millis(5) + engine.config().dataplane_overhead);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoscaler;
mod engine;
mod function;
mod replica;

pub use autoscaler::{Autoscaler, AutoscalerConfig};
pub use engine::{Completion, EngineConfig, EngineKind, EngineModel, ScaleAction};
pub use function::FunctionSpec;
pub use replica::Replica;
