//! Function (revision) specifications.

/// Describes one deployable function revision.
///
/// Mirrors the knobs that matter for the performance model: concurrency
/// per replica and replica bounds. The container image is carried for
/// identification/reporting only — execution is modelled, not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    /// Function (revision) name.
    pub name: String,
    /// Container image reference (from the class definition, e.g.
    /// `img/resize`).
    pub image: String,
    /// Requests a single replica processes concurrently
    /// (Knative `containerConcurrency`).
    pub container_concurrency: u32,
    /// Lower bound on replicas (`minScale`); 0 enables scale-to-zero.
    pub min_scale: u32,
    /// Upper bound on replicas (`maxScale`); `u32::MAX` means unbounded.
    pub max_scale: u32,
}

impl FunctionSpec {
    /// Creates a spec with defaults: concurrency 1, scale-to-zero
    /// enabled, unbounded max scale.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionSpec {
            name: name.into(),
            image: String::new(),
            container_concurrency: 1,
            min_scale: 0,
            max_scale: u32::MAX,
        }
    }

    /// Sets the container image reference.
    pub fn image(mut self, image: impl Into<String>) -> Self {
        self.image = image.into();
        self
    }

    /// Sets requests-per-replica concurrency.
    ///
    /// # Panics
    ///
    /// Panics if `c` is zero.
    pub fn container_concurrency(mut self, c: u32) -> Self {
        assert!(c > 0, "container concurrency must be at least 1");
        self.container_concurrency = c;
        self
    }

    /// Sets the minimum replica count.
    pub fn min_scale(mut self, n: u32) -> Self {
        self.min_scale = n;
        self
    }

    /// Sets the maximum replica count.
    pub fn max_scale(mut self, n: u32) -> Self {
        self.max_scale = n;
        self
    }

    /// Clamps a desired replica count into `[min_scale, max_scale]`.
    pub fn clamp_scale(&self, desired: u32) -> u32 {
        desired.clamp(self.min_scale, self.max_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let s = FunctionSpec::new("f")
            .image("img/f")
            .container_concurrency(8)
            .min_scale(1)
            .max_scale(10);
        assert_eq!(s.name, "f");
        assert_eq!(s.image, "img/f");
        assert_eq!(s.container_concurrency, 8);
        assert_eq!(s.clamp_scale(0), 1);
        assert_eq!(s.clamp_scale(100), 10);
        assert_eq!(s.clamp_scale(5), 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_concurrency_rejected() {
        let _ = FunctionSpec::new("f").container_concurrency(0);
    }

    #[test]
    fn defaults_allow_scale_to_zero() {
        let s = FunctionSpec::new("f");
        assert_eq!(s.min_scale, 0);
        assert_eq!(s.clamp_scale(0), 0);
    }
}
