//! Concurrency-targeting autoscaler (Knative KPA style).
//!
//! The autoscaler samples the engine's in-flight concurrency, averages it
//! over a long *stable* window and a short *panic* window, and proposes
//! `ceil(average_concurrency / target_per_replica)` replicas. When the
//! panic-window average exceeds `panic_threshold ×` the current capacity,
//! the autoscaler enters panic mode: it follows the panic window and
//! never scales down until the panic subsides.

use std::collections::VecDeque;

use oprc_simcore::{SimDuration, SimTime};

/// Tunables for [`Autoscaler`]. Defaults follow Knative's KPA.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Per-replica concurrency target the scaler aims for.
    pub target_concurrency: f64,
    /// Long averaging window (default 60s).
    pub stable_window: SimDuration,
    /// Short reactive window (default 6s).
    pub panic_window: SimDuration,
    /// Panic when panic-window average ≥ this multiple of current
    /// capacity (default 2.0).
    pub panic_threshold: f64,
    /// How long a scaled-to-zero decision is delayed after the last
    /// request (default 30s).
    pub scale_to_zero_grace: SimDuration,
    /// Max multiplicative step-up per decision (default 1000, i.e.
    /// effectively unbounded like Knative's `max-scale-up-rate`).
    pub max_scale_up_rate: f64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            target_concurrency: 1.0,
            stable_window: SimDuration::from_secs(60),
            panic_window: SimDuration::from_secs(6),
            panic_threshold: 2.0,
            scale_to_zero_grace: SimDuration::from_secs(30),
            max_scale_up_rate: 1000.0,
        }
    }
}

/// The autoscaling state machine.
///
/// Feed it concurrency samples with [`Autoscaler::observe`], then ask for
/// a recommendation with [`Autoscaler::desired`].
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    samples: VecDeque<(SimTime, f64)>,
    /// Time the concurrency was last observed non-zero.
    last_active: SimTime,
    in_panic: bool,
    /// Panic mode persists until this time (refreshed on each trigger).
    panic_until: SimTime,
    panic_peak: u32,
}

impl Autoscaler {
    /// Creates an autoscaler with the given configuration.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Autoscaler {
            cfg,
            samples: VecDeque::new(),
            last_active: SimTime::ZERO,
            in_panic: false,
            panic_until: SimTime::ZERO,
            panic_peak: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Whether panic mode is active.
    pub fn in_panic(&self) -> bool {
        self.in_panic
    }

    /// Records an instantaneous concurrency sample at `now`.
    pub fn observe(&mut self, now: SimTime, concurrency: f64) {
        if concurrency > 0.0 {
            self.last_active = now;
        }
        self.samples.push_back((now, concurrency));
        let horizon = now - self.cfg.stable_window;
        while self.samples.front().is_some_and(|&(t, _)| t < horizon) {
            self.samples.pop_front();
        }
    }

    fn window_avg(&self, now: SimTime, window: SimDuration) -> f64 {
        let from = now - window;
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Computes the recommended replica count given the current count.
    ///
    /// Returns an unclamped recommendation; callers apply
    /// [`crate::FunctionSpec::clamp_scale`] and cluster capacity limits.
    pub fn desired(&mut self, now: SimTime, current_replicas: u32) -> u32 {
        let stable_avg = self.window_avg(now, self.cfg.stable_window);
        let panic_avg = self.window_avg(now, self.cfg.panic_window);
        let target = self.cfg.target_concurrency.max(0.01);

        let want_stable = (stable_avg / target).ceil() as u32;
        let want_panic = (panic_avg / target).ceil() as u32;

        // Enter panic when the short window shows ≥ threshold × current
        // capacity; panic persists for a stable-window duration past the
        // last trigger (Knative KPA semantics).
        let capacity = (current_replicas.max(1) as f64) * target;
        if panic_avg >= self.cfg.panic_threshold * capacity {
            self.in_panic = true;
            self.panic_until = now + self.cfg.stable_window;
            self.panic_peak = self.panic_peak.max(want_panic).max(current_replicas);
        } else if self.in_panic && now >= self.panic_until {
            self.in_panic = false;
            self.panic_peak = 0;
        }

        let mut desired = if self.in_panic {
            // Never scale down during panic.
            self.panic_peak = self.panic_peak.max(want_panic);
            self.panic_peak
        } else {
            want_stable
        };

        // Rate-limit scale-up.
        let max_up = ((current_replicas.max(1) as f64) * self.cfg.max_scale_up_rate) as u32;
        desired = desired.min(max_up.max(1));

        // Scale to zero only after the grace period of inactivity: hold
        // at one replica until the grace period elapses.
        if desired == 0 && now.since(self.last_active) < self.cfg.scale_to_zero_grace {
            desired = 1;
        }
        desired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler(target: f64) -> Autoscaler {
        Autoscaler::new(AutoscalerConfig {
            target_concurrency: target,
            stable_window: SimDuration::from_secs(60),
            panic_window: SimDuration::from_secs(6),
            ..AutoscalerConfig::default()
        })
    }

    /// Feeds a constant concurrency for `secs` seconds, 1 sample/s.
    fn feed(s: &mut Autoscaler, from_s: u64, secs: u64, conc: f64) -> SimTime {
        let mut now = SimTime::ZERO;
        for t in from_s..from_s + secs {
            now = SimTime::from_secs(t);
            s.observe(now, conc);
        }
        now
    }

    #[test]
    fn steady_load_scales_to_ratio() {
        let mut s = scaler(2.0);
        let now = feed(&mut s, 0, 70, 8.0);
        // 8 concurrent / target 2 → 4 replicas.
        assert_eq!(s.desired(now, 4), 4);
    }

    #[test]
    fn burst_triggers_panic_scale_up() {
        let mut s = scaler(1.0);
        let now = feed(&mut s, 0, 60, 1.0);
        assert_eq!(s.desired(now, 1), 1);
        // Sudden 10x burst for 6s: panic window sees it, stable window
        // still diluted.
        let now = feed(&mut s, 60, 6, 10.0);
        let d = s.desired(now, 1);
        assert!(s.in_panic());
        // Panic window average ≈ 8.7 (one stale 1.0 sample in the 6s
        // window) → at least 8 replicas.
        assert!(d >= 8, "panic should follow short window, got {d}");
    }

    #[test]
    fn panic_never_scales_down() {
        let mut s = scaler(1.0);
        let now = feed(&mut s, 0, 6, 20.0);
        let d1 = s.desired(now, 1);
        assert!(s.in_panic());
        // Load drops but panic persists while short window is elevated.
        let now2 = feed(&mut s, 6, 2, 15.0);
        let d2 = s.desired(now2, d1);
        assert!(d2 >= d1, "no scale-down in panic: {d2} < {d1}");
    }

    #[test]
    fn idle_scales_to_zero_after_grace() {
        let mut s = scaler(1.0);
        let now = feed(&mut s, 0, 10, 2.0);
        assert!(s.desired(now, 2) >= 1);
        // 100s of zero concurrency — past stable window and grace.
        let now = feed(&mut s, 10, 100, 0.0);
        assert_eq!(s.desired(now, 2), 0);
    }

    #[test]
    fn grace_period_holds_one_replica() {
        let mut s = scaler(1.0);
        let now = feed(&mut s, 0, 10, 2.0);
        let _ = s.desired(now, 2);
        // 10s idle: inside the 30s grace → keep at least 1.
        let now = feed(&mut s, 10, 10, 0.0);
        assert_eq!(s.desired(now, 2), 1);
    }

    #[test]
    fn samples_outside_stable_window_dropped() {
        let mut s = scaler(1.0);
        feed(&mut s, 0, 10, 100.0);
        let now = feed(&mut s, 10, 120, 1.0);
        // Old 100-concurrency samples fully aged out.
        assert_eq!(s.desired(now, 1), 1);
    }

    #[test]
    fn scale_up_rate_limited() {
        let mut s = Autoscaler::new(AutoscalerConfig {
            target_concurrency: 1.0,
            max_scale_up_rate: 2.0,
            ..AutoscalerConfig::default()
        });
        let now = feed(&mut s, 0, 6, 100.0);
        // Panic wants ~100, but rate limit allows 2× current (1) = 2.
        assert_eq!(s.desired(now, 1), 2);
    }
}
