//! The engine model: replicas + autoscaler + dataplane behaviour.

use oprc_chaos::{FaultInjector, FaultKind, InjectionSite};
use oprc_simcore::{SimDuration, SimTime};
use oprc_telemetry::{TraceContext, TraceSink};
use oprc_value::vjson;

use crate::{Autoscaler, AutoscalerConfig, FunctionSpec, Replica};

/// Which execution substrate is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Knative serving: request-driven autoscaling, scale-to-zero with an
    /// activator, per-request queue-proxy overhead.
    Knative,
    /// A plain Kubernetes deployment (the paper's `bypass` mode): fixed
    /// replicas, no serverless dataplane overhead, no autoscaling.
    PlainDeployment,
}

/// Engine performance parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Per-request dataplane cost added by the queue-proxy sidecar
    /// (Knative only).
    pub dataplane_overhead: SimDuration,
    /// Extra latency for requests that arrive while scaled to zero and
    /// must traverse the activator.
    pub activator_overhead: SimDuration,
    /// Container cold-start duration (image assumed pulled).
    pub cold_start: SimDuration,
    /// Autoscaler decision period.
    pub tick_interval: SimDuration,
    /// Autoscaler tunables.
    pub autoscaler: AutoscalerConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            dataplane_overhead: SimDuration::from_micros(1_500),
            activator_overhead: SimDuration::from_millis(2),
            cold_start: SimDuration::from_millis(1_800),
            tick_interval: SimDuration::from_secs(2),
            autoscaler: AutoscalerConfig::default(),
        }
    }
}

/// The outcome of admitting one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When execution began (after queueing / cold start).
    pub start: SimTime,
    /// When the response is produced.
    pub end: SimTime,
    /// True if this request waited for a replica cold start.
    pub cold_started: bool,
    /// Index of the serving replica (diagnostic).
    pub replica: usize,
}

/// A scaling decision from [`EngineModel::on_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleAction {
    /// Replica count before the decision.
    pub from: u32,
    /// Replica count after the decision.
    pub to: u32,
}

/// Performance model of one function's execution substrate.
///
/// See the [crate docs](crate) for the driving contract.
#[derive(Debug, Clone)]
pub struct EngineModel {
    kind: EngineKind,
    cfg: EngineConfig,
    spec: FunctionSpec,
    replicas: Vec<Replica>,
    autoscaler: Autoscaler,
    /// Cluster-imposed replica ceiling (scheduling capacity).
    capacity_limit: u32,
    requests: u64,
    cold_starts: u64,
    rejected: u64,
    telemetry: TraceSink,
    chaos: FaultInjector,
}

impl EngineModel {
    /// Creates an engine for `spec` with no replicas.
    pub fn new(kind: EngineKind, cfg: EngineConfig, spec: FunctionSpec) -> Self {
        let autoscaler = Autoscaler::new(cfg.autoscaler.clone());
        EngineModel {
            kind,
            cfg,
            spec,
            replicas: Vec::new(),
            autoscaler,
            capacity_limit: u32::MAX,
            requests: 0,
            cold_starts: 0,
            rejected: 0,
            telemetry: TraceSink::disabled(),
            chaos: FaultInjector::disabled(),
        }
    }

    /// Attaches a trace sink; engine-side spans (`engine.execute`) and
    /// scaling/rejection instants flow into it.
    pub fn set_telemetry(&mut self, sink: TraceSink) {
        self.telemetry = sink;
    }

    /// Attaches a fault injector consulted at the `engine.execute` site:
    /// error and torn faults reject the request, latency faults stretch
    /// its service time. Share one injector across engines (it clones
    /// cheaply) so the whole simulation draws from one schedule.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.chaos = injector;
    }

    /// The engine kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The function spec.
    pub fn spec(&self) -> &FunctionSpec {
        &self.spec
    }

    /// Current replica count (including still-starting replicas).
    pub fn replica_count(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Total admitted requests.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests that waited on a cold start.
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    /// Requests rejected because no replica existed and none could be
    /// created (plain deployments with zero replicas, or capacity 0).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sets the cluster-imposed replica ceiling (scheduling capacity).
    pub fn set_capacity_limit(&mut self, limit: u32) {
        self.capacity_limit = limit;
        if self.replicas.len() as u32 > limit {
            self.replicas.truncate(limit as usize);
        }
    }

    /// The effective maximum replicas: min(spec max, cluster capacity).
    pub fn effective_max(&self) -> u32 {
        self.spec.max_scale.min(self.capacity_limit)
    }

    /// Directly sets the replica count (used for plain deployments and
    /// experiment setup). New replicas become ready after `cold_start`.
    pub fn force_replicas(&mut self, now: SimTime, count: u32, cold_start: SimDuration) {
        let count = count.min(self.effective_max()) as usize;
        while self.replicas.len() < count {
            self.replicas.push(Replica::new(
                now + cold_start,
                self.spec.container_concurrency,
            ));
        }
        self.replicas.truncate(count);
    }

    /// Current total in-flight requests across replicas.
    pub fn concurrency(&self, now: SimTime) -> usize {
        self.replicas.iter().map(|r| r.outstanding(now)).sum()
    }

    /// Admits a request arriving at `now` whose pure execution takes
    /// `service`.
    ///
    /// Returns `None` when the request cannot be served at all: a plain
    /// deployment with zero replicas, or a Knative service whose capacity
    /// limit is zero.
    pub fn on_request(&mut self, now: SimTime, service: SimDuration) -> Option<Completion> {
        self.on_request_traced(now, service, TraceContext::NONE)
    }

    /// [`EngineModel::on_request`] with trace propagation: the
    /// `engine.execute` span is recorded as a child of `parent` (the
    /// caller's context carried across the offload boundary, e.g. via
    /// `InvocationTask::trace`). Pass [`TraceContext::NONE`] for a root
    /// span.
    pub fn on_request_traced(
        &mut self,
        now: SimTime,
        service: SimDuration,
        parent: TraceContext,
    ) -> Option<Completion> {
        let mut service = service;
        match self.chaos.decide(InjectionSite::EngineExecute) {
            None => {}
            Some(FaultKind::Latency(extra)) => service += extra,
            Some(kind) => {
                // Error and torn faults both lose the request at the
                // engine; the caller observes a rejection either way.
                self.rejected += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.instant(
                        "chaos.fault",
                        vjson!({
                            "site": (InjectionSite::EngineExecute.as_str()),
                            "kind": (kind.as_str()),
                            "function": (self.spec.name.as_str()),
                        }),
                        now,
                    );
                }
                return None;
            }
        }
        let mut via_activator = false;
        if self.replicas.is_empty() {
            match self.kind {
                EngineKind::Knative if self.effective_max() > 0 => {
                    // Activator path: trigger scale from zero.
                    self.replicas.push(Replica::new(
                        now + self.cfg.cold_start,
                        self.spec.container_concurrency,
                    ));
                    via_activator = true;
                }
                _ => {
                    self.rejected += 1;
                    if self.telemetry.is_enabled() {
                        self.telemetry.instant(
                            "engine.reject",
                            vjson!({"function": (self.spec.name.as_str())}),
                            now,
                        );
                    }
                    return None;
                }
            }
        }

        let service = match self.kind {
            EngineKind::Knative => service + self.cfg.dataplane_overhead,
            EngineKind::PlainDeployment => service,
        };

        // Least-outstanding routing over all replicas (starting replicas
        // included: the activator/queue-proxy buffers until ready).
        let idx = self
            .replicas
            .iter()
            .enumerate()
            .min_by_key(|(i, r)| (r.outstanding(now), r.next_free(), *i))
            .map(|(i, _)| i)
            .expect("non-empty replica set");
        let replica = &mut self.replicas[idx];
        let cold = !replica.is_ready(now);
        let arrival = if via_activator {
            now + self.cfg.activator_overhead
        } else {
            now
        };
        let (start, end) = replica.admit(arrival, service);
        self.requests += 1;
        if cold {
            self.cold_starts += 1;
        }
        if self.telemetry.is_enabled() {
            let span = self.telemetry.begin_child(parent, "engine.execute", now);
            self.telemetry
                .attr(span, "function", self.spec.name.as_str());
            self.telemetry
                .attr(span, "queue_wait_ns", (start - now).as_nanos());
            self.telemetry.attr(span, "cold_start", cold);
            self.telemetry.attr(span, "replica", idx as u64);
            self.telemetry.end(span, end);
        }
        Some(Completion {
            start,
            end,
            cold_started: cold,
            replica: idx,
        })
    }

    /// Runs one autoscaler period at `now`.
    ///
    /// For [`EngineKind::PlainDeployment`] this is a no-op returning the
    /// current count. For Knative it samples concurrency, asks the
    /// [`Autoscaler`] for a recommendation, clamps to spec and capacity,
    /// and applies the change (scale-in only removes idle replicas).
    pub fn on_tick(&mut self, now: SimTime) -> ScaleAction {
        let from = self.replica_count();
        if self.kind == EngineKind::PlainDeployment {
            return ScaleAction { from, to: from };
        }
        self.autoscaler.observe(now, self.concurrency(now) as f64);
        let desired = self.autoscaler.desired(now, from);
        let desired = self.spec.clamp_scale(desired).min(self.capacity_limit);

        if desired > from {
            for _ in from..desired {
                self.replicas.push(Replica::new(
                    now + self.cfg.cold_start,
                    self.spec.container_concurrency,
                ));
            }
        } else if desired < from {
            // Remove idle replicas only, newest first.
            let mut i = self.replicas.len();
            let mut remaining = (from - desired) as usize;
            while remaining > 0 && i > 0 {
                i -= 1;
                if self.replicas[i].is_idle(now) {
                    self.replicas.remove(i);
                    remaining -= 1;
                }
            }
        }
        let action = ScaleAction {
            from,
            to: self.replica_count(),
        };
        if action.to != action.from && self.telemetry.is_enabled() {
            self.telemetry.instant(
                "autoscaler.scale",
                vjson!({
                    "function": (self.spec.name.as_str()),
                    "from": (action.from),
                    "to": (action.to),
                    "panic": (self.autoscaler.in_panic()),
                }),
                now,
            );
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knative() -> EngineModel {
        EngineModel::new(
            EngineKind::Knative,
            EngineConfig::default(),
            FunctionSpec::new("f").container_concurrency(1),
        )
    }

    fn plain(replicas: u32) -> EngineModel {
        let mut e = EngineModel::new(
            EngineKind::PlainDeployment,
            EngineConfig::default(),
            FunctionSpec::new("f").container_concurrency(1),
        );
        e.force_replicas(SimTime::ZERO, replicas, SimDuration::ZERO);
        e
    }

    #[test]
    fn scale_from_zero_pays_cold_start() {
        let mut e = knative();
        let c = e
            .on_request(SimTime::ZERO, SimDuration::from_millis(10))
            .unwrap();
        assert!(c.cold_started);
        assert!(c.start >= SimTime::ZERO + e.config().cold_start);
        assert_eq!(e.cold_starts(), 1);
        assert_eq!(e.replica_count(), 1);
    }

    #[test]
    fn warm_requests_skip_cold_start() {
        let mut e = knative();
        e.force_replicas(SimTime::ZERO, 1, SimDuration::ZERO);
        let c = e
            .on_request(SimTime::from_secs(1), SimDuration::from_millis(10))
            .unwrap();
        assert!(!c.cold_started);
        assert_eq!(c.start, SimTime::from_secs(1));
        assert_eq!(
            c.end,
            SimTime::from_secs(1) + SimDuration::from_millis(10) + e.config().dataplane_overhead
        );
    }

    #[test]
    fn plain_deployment_has_no_overhead() {
        let mut e = plain(1);
        let c = e
            .on_request(SimTime::ZERO, SimDuration::from_millis(10))
            .unwrap();
        assert_eq!(c.end, SimTime::from_millis(10));
    }

    #[test]
    fn plain_deployment_zero_replicas_rejects() {
        let mut e = EngineModel::new(
            EngineKind::PlainDeployment,
            EngineConfig::default(),
            FunctionSpec::new("f"),
        );
        assert!(e
            .on_request(SimTime::ZERO, SimDuration::from_millis(1))
            .is_none());
        assert_eq!(e.rejected(), 1);
    }

    #[test]
    fn requests_spread_least_outstanding() {
        let mut e = plain(2);
        let a = e
            .on_request(SimTime::ZERO, SimDuration::from_millis(10))
            .unwrap();
        let b = e
            .on_request(SimTime::ZERO, SimDuration::from_millis(10))
            .unwrap();
        assert_ne!(a.replica, b.replica);
        assert_eq!(b.start, SimTime::ZERO);
    }

    #[test]
    fn tick_scales_up_under_load() {
        let mut e = knative();
        e.force_replicas(SimTime::ZERO, 1, SimDuration::ZERO);
        // Saturate: 50 requests of 100ms each at t=0 on 1 replica.
        for _ in 0..50 {
            e.on_request(SimTime::ZERO, SimDuration::from_millis(100));
        }
        let action = e.on_tick(SimTime::from_secs(1));
        assert!(action.to > action.from, "{action:?}");
    }

    #[test]
    fn capacity_limit_caps_scaling() {
        let mut e = knative();
        e.set_capacity_limit(2);
        e.force_replicas(SimTime::ZERO, 1, SimDuration::ZERO);
        for _ in 0..100 {
            e.on_request(SimTime::ZERO, SimDuration::from_millis(100));
        }
        let action = e.on_tick(SimTime::from_secs(1));
        assert!(action.to <= 2, "{action:?}");
        // Lowering the cap truncates immediately.
        e.set_capacity_limit(1);
        assert_eq!(e.replica_count(), 1);
    }

    #[test]
    fn idle_scale_in_removes_idle_only() {
        let mut e = knative();
        e.force_replicas(SimTime::ZERO, 3, SimDuration::ZERO);
        // One replica busy far into the future.
        e.on_request(SimTime::ZERO, SimDuration::from_secs(500));
        // Long idle: autoscaler wants 0 (after grace), but busy replica
        // must survive.
        let mut now = SimTime::ZERO;
        for s in 0..200 {
            now = SimTime::from_secs(s);
            e.on_tick(now);
        }
        assert_eq!(e.replica_count(), 1);
        assert!(!e.replicas[0].is_idle(now));
    }

    #[test]
    fn plain_tick_is_noop() {
        let mut e = plain(3);
        let a = e.on_tick(SimTime::from_secs(100));
        assert_eq!(a.from, 3);
        assert_eq!(a.to, 3);
    }

    #[test]
    fn force_replicas_respects_effective_max() {
        let mut e = EngineModel::new(
            EngineKind::PlainDeployment,
            EngineConfig::default(),
            FunctionSpec::new("f").max_scale(2),
        );
        e.force_replicas(SimTime::ZERO, 10, SimDuration::ZERO);
        assert_eq!(e.replica_count(), 2);
    }

    fn external_sink() -> TraceSink {
        TraceSink::new(oprc_telemetry::TelemetryConfig {
            clock: oprc_telemetry::ClockMode::External,
            ..oprc_telemetry::TelemetryConfig::default()
        })
    }

    #[test]
    fn traced_request_links_execute_span_to_parent() {
        let mut e = plain(1);
        let sink = external_sink();
        e.set_telemetry(sink.clone());
        let parent = sink.begin_root("invoke", SimTime::ZERO);
        let c = e
            .on_request_traced(SimTime::ZERO, SimDuration::from_millis(10), parent)
            .unwrap();
        sink.end(parent, c.end);
        let spans = sink.finished();
        let exec = spans.iter().find(|s| s.name == "engine.execute").unwrap();
        assert_eq!(exec.parent, Some(parent.span_id));
        assert_eq!(exec.trace_id, parent.trace_id);
        assert_eq!(exec.end, Some(c.end));
        assert_eq!(exec.attrs["cold_start"].as_bool(), Some(false));
        assert_eq!(exec.attrs["queue_wait_ns"].as_u64(), Some(0));
    }

    #[test]
    fn rejection_and_scaling_emit_instants() {
        let mut e = EngineModel::new(
            EngineKind::PlainDeployment,
            EngineConfig::default(),
            FunctionSpec::new("f"),
        );
        let sink = external_sink();
        e.set_telemetry(sink.clone());
        assert!(e
            .on_request(SimTime::ZERO, SimDuration::from_millis(1))
            .is_none());
        let mut k = knative();
        k.set_telemetry(sink.clone());
        k.force_replicas(SimTime::ZERO, 1, SimDuration::ZERO);
        for _ in 0..50 {
            k.on_request(SimTime::ZERO, SimDuration::from_millis(100));
        }
        k.on_tick(SimTime::from_secs(1));
        let names: Vec<String> = sink.finished().into_iter().map(|s| s.name).collect();
        assert!(names.contains(&"engine.reject".to_string()), "{names:?}");
        assert!(names.contains(&"autoscaler.scale".to_string()), "{names:?}");
    }

    #[test]
    fn concurrency_counts_in_flight() {
        let mut e = plain(2);
        e.on_request(SimTime::ZERO, SimDuration::from_millis(100));
        e.on_request(SimTime::ZERO, SimDuration::from_millis(100));
        assert_eq!(e.concurrency(SimTime::from_millis(50)), 2);
        assert_eq!(e.concurrency(SimTime::from_millis(150)), 0);
    }
}
