//! Per-replica execution state.

use oprc_simcore::{SimDuration, SimTime};

/// One running (or starting) function replica.
///
/// A replica owns `concurrency` execution slots; each slot serves one
/// request at a time, FIFO. The replica becomes usable at `ready_at`
/// (cold-start completion); requests admitted earlier queue until then.
#[derive(Debug, Clone)]
pub struct Replica {
    /// When the container finished starting.
    ready_at: SimTime,
    /// Next-free time per concurrency slot.
    slots: Vec<SimTime>,
    /// Completion times of admitted requests not yet known-finished;
    /// pruned against the arrival clock in [`Replica::admit`].
    ends: Vec<SimTime>,
    /// Completion time of the most recently finishing request.
    last_busy_until: SimTime,
    served: u64,
}

impl Replica {
    /// Creates a replica that becomes ready at `ready_at` with
    /// `concurrency` slots.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency` is zero.
    pub fn new(ready_at: SimTime, concurrency: u32) -> Self {
        assert!(concurrency > 0, "replica needs at least one slot");
        Replica {
            ready_at,
            slots: vec![ready_at; concurrency as usize],
            ends: Vec::new(),
            last_busy_until: ready_at,
            served: 0,
        }
    }

    /// When this replica finished (or will finish) cold start.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// True once the container start completed at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        now >= self.ready_at
    }

    /// Requests currently executing *or queued* as of `now`.
    ///
    /// This is the concurrency the Knative queue-proxy reports: queued
    /// requests count, so an overloaded single-slot replica can report a
    /// concurrency far above its slot count.
    pub fn outstanding(&self, now: SimTime) -> usize {
        self.ends.iter().filter(|&&t| t > now).count()
    }

    /// Earliest time a slot frees up.
    pub fn next_free(&self) -> SimTime {
        *self.slots.iter().min().expect("at least one slot")
    }

    /// True if no request is running or scheduled past `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.last_busy_until <= now
    }

    /// Time the replica last had work finishing.
    pub fn busy_until(&self) -> SimTime {
        self.last_busy_until
    }

    /// Total requests admitted to this replica.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Admits a request arriving at `arrival` with the given service
    /// time, returning `(start, end)`.
    pub fn admit(&mut self, arrival: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let (idx, &free) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one slot");
        let start = arrival.max(free).max(self.ready_at);
        let end = start + service;
        self.slots[idx] = end;
        self.ends.retain(|&t| t > arrival);
        self.ends.push(end);
        self.last_busy_until = self.last_busy_until.max(end);
        self.served += 1;
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_delays_first_request() {
        let mut r = Replica::new(SimTime::from_millis(500), 1);
        assert!(!r.is_ready(SimTime::ZERO));
        let (start, end) = r.admit(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(start, SimTime::from_millis(500));
        assert_eq!(end, SimTime::from_millis(510));
    }

    #[test]
    fn slots_serve_concurrently() {
        let mut r = Replica::new(SimTime::ZERO, 2);
        let (s1, _) = r.admit(SimTime::ZERO, SimDuration::from_millis(10));
        let (s2, _) = r.admit(SimTime::ZERO, SimDuration::from_millis(10));
        let (s3, _) = r.admit(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, SimTime::ZERO);
        assert_eq!(s3, SimTime::from_millis(10)); // third waits for a slot
        assert_eq!(r.served(), 3);
    }

    #[test]
    fn outstanding_and_idle_tracking() {
        let mut r = Replica::new(SimTime::ZERO, 2);
        r.admit(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(r.outstanding(SimTime::from_millis(5)), 1);
        assert_eq!(r.outstanding(SimTime::from_millis(15)), 0);
        assert!(!r.is_idle(SimTime::from_millis(5)));
        assert!(r.is_idle(SimTime::from_millis(10)));
        assert_eq!(r.busy_until(), SimTime::from_millis(10));
    }

    #[test]
    fn next_free_is_min_slot() {
        let mut r = Replica::new(SimTime::ZERO, 2);
        r.admit(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(r.next_free(), SimTime::ZERO);
        r.admit(SimTime::ZERO, SimDuration::from_millis(20));
        assert_eq!(r.next_free(), SimTime::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = Replica::new(SimTime::ZERO, 0);
    }
}
