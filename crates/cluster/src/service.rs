//! Services: stable endpoints with load balancing.
//!
//! A [`EndpointPool`] tracks the ready endpoints behind a service name and
//! picks one per request according to a [`LbPolicy`]. The pool is generic
//! over how requests finish: callers report completions so
//! `LeastOutstanding` can track in-flight counts.

use std::collections::BTreeMap;

use crate::PodId;

/// Load-balancing policy for an [`EndpointPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LbPolicy {
    /// Cycle through endpoints in order.
    #[default]
    RoundRobin,
    /// Send to the endpoint with the fewest in-flight requests
    /// (ties: lowest pod id).
    LeastOutstanding,
    /// Hash an affinity key to an endpoint (sticky routing); used by the
    /// object router for data locality (paper §II-A).
    HashKey,
}

/// The ready endpoints of one service plus balancing state.
#[derive(Debug, Clone, Default)]
pub struct EndpointPool {
    policy: LbPolicy,
    endpoints: Vec<PodId>,
    rr_next: usize,
    in_flight: BTreeMap<PodId, u64>,
}

impl EndpointPool {
    /// Creates an empty pool with the given policy.
    pub fn new(policy: LbPolicy) -> Self {
        EndpointPool {
            policy,
            ..Default::default()
        }
    }

    /// Replaces the endpoint set (e.g. after a reconcile).
    ///
    /// In-flight counts for surviving endpoints are preserved.
    pub fn set_endpoints(&mut self, endpoints: Vec<PodId>) {
        self.in_flight.retain(|id, _| endpoints.contains(id));
        self.endpoints = endpoints;
        if self.rr_next >= self.endpoints.len() {
            self.rr_next = 0;
        }
    }

    /// Current ready endpoints.
    pub fn endpoints(&self) -> &[PodId] {
        &self.endpoints
    }

    /// True if no endpoint is ready (scale-to-zero state).
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Picks an endpoint for a request.
    ///
    /// `key` is consulted only by [`LbPolicy::HashKey`]; pass the object
    /// id (or any affinity key) there, and anything (e.g. 0) otherwise.
    /// Returns `None` when the pool is empty.
    pub fn pick(&mut self, key: u64) -> Option<PodId> {
        if self.endpoints.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            LbPolicy::RoundRobin => {
                let ep = self.endpoints[self.rr_next % self.endpoints.len()];
                self.rr_next = (self.rr_next + 1) % self.endpoints.len();
                ep
            }
            LbPolicy::LeastOutstanding => *self
                .endpoints
                .iter()
                .min_by_key(|id| (self.in_flight.get(id).copied().unwrap_or(0), **id))
                .expect("non-empty"),
            LbPolicy::HashKey => {
                let idx = (splitmix64(key) % self.endpoints.len() as u64) as usize;
                self.endpoints[idx]
            }
        };
        *self.in_flight.entry(chosen).or_insert(0) += 1;
        Some(chosen)
    }

    /// Reports that a request previously picked for `endpoint` finished.
    pub fn complete(&mut self, endpoint: PodId) {
        if let Some(n) = self.in_flight.get_mut(&endpoint) {
            *n = n.saturating_sub(1);
        }
    }

    /// In-flight requests currently attributed to `endpoint`.
    pub fn outstanding(&self, endpoint: PodId) -> u64 {
        self.in_flight.get(&endpoint).copied().unwrap_or(0)
    }

    /// Total in-flight requests across endpoints.
    pub fn total_outstanding(&self) -> u64 {
        self.in_flight.values().sum()
    }
}

/// SplitMix64 finalizer: cheap, well-distributed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pods(n: u64) -> Vec<PodId> {
        (0..n).map(PodId).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = EndpointPool::new(LbPolicy::RoundRobin);
        p.set_endpoints(pods(3));
        let picks: Vec<_> = (0..6).map(|_| p.pick(0).unwrap().as_u64()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_balances() {
        let mut p = EndpointPool::new(LbPolicy::LeastOutstanding);
        p.set_endpoints(pods(2));
        let a = p.pick(0).unwrap();
        let b = p.pick(0).unwrap();
        assert_ne!(a, b);
        p.complete(a);
        // a now has 0 in flight, b has 1 → next pick is a.
        assert_eq!(p.pick(0).unwrap(), a);
        assert_eq!(p.total_outstanding(), 2);
    }

    #[test]
    fn hash_key_is_sticky() {
        let mut p = EndpointPool::new(LbPolicy::HashKey);
        p.set_endpoints(pods(4));
        let first = p.pick(42).unwrap();
        for _ in 0..10 {
            assert_eq!(p.pick(42).unwrap(), first);
        }
        // Different keys spread across endpoints.
        let distinct: std::collections::BTreeSet<_> = (0..64).map(|k| p.pick(k).unwrap()).collect();
        assert!(distinct.len() >= 3, "hash should spread: {distinct:?}");
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut p = EndpointPool::new(LbPolicy::RoundRobin);
        assert_eq!(p.pick(0), None);
        assert!(p.is_empty());
    }

    #[test]
    fn set_endpoints_preserves_surviving_inflight() {
        let mut p = EndpointPool::new(LbPolicy::LeastOutstanding);
        p.set_endpoints(pods(2));
        let a = p.pick(0).unwrap();
        p.set_endpoints(vec![a]);
        assert_eq!(p.outstanding(a), 1);
        p.set_endpoints(vec![PodId(9)]);
        assert_eq!(p.total_outstanding(), 0);
    }

    #[test]
    fn complete_unknown_endpoint_is_noop() {
        let mut p = EndpointPool::new(LbPolicy::RoundRobin);
        p.set_endpoints(pods(1));
        p.complete(PodId(77));
        assert_eq!(p.total_outstanding(), 0);
    }

    #[test]
    fn rr_index_reset_on_shrink() {
        let mut p = EndpointPool::new(LbPolicy::RoundRobin);
        p.set_endpoints(pods(3));
        p.pick(0);
        p.pick(0);
        p.set_endpoints(pods(1));
        assert_eq!(p.pick(0), Some(PodId(0)));
    }
}
