//! Compute resource quantities.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A bundle of compute resources: CPU in millicores and memory in bytes.
///
/// Matches the Kubernetes resource model closely enough for scheduling
/// decisions (requests only; limits are not modelled separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceSpec {
    /// CPU in millicores (1000 = one vCPU).
    pub cpu_millis: u64,
    /// Memory in bytes.
    pub memory_bytes: u64,
}

impl ResourceSpec {
    /// A zero-resource bundle.
    pub const ZERO: ResourceSpec = ResourceSpec {
        cpu_millis: 0,
        memory_bytes: 0,
    };

    /// Creates a bundle from CPU millicores and memory bytes.
    pub const fn new(cpu_millis: u64, memory_bytes: u64) -> Self {
        ResourceSpec {
            cpu_millis,
            memory_bytes,
        }
    }

    /// A bundle sized like the paper's worker VMs (4 vCPU, 8 GiB).
    pub const fn worker_vm() -> Self {
        ResourceSpec::new(4_000, 8 << 30)
    }

    /// True if `self` can accommodate `other` in both dimensions.
    pub fn fits(&self, other: &ResourceSpec) -> bool {
        self.cpu_millis >= other.cpu_millis && self.memory_bytes >= other.memory_bytes
    }

    /// Fraction of `capacity` this bundle occupies, as the max over
    /// dimensions (0.0 for zero capacity).
    pub fn dominant_share(&self, capacity: &ResourceSpec) -> f64 {
        let cpu = if capacity.cpu_millis == 0 {
            0.0
        } else {
            self.cpu_millis as f64 / capacity.cpu_millis as f64
        };
        let mem = if capacity.memory_bytes == 0 {
            0.0
        } else {
            self.memory_bytes as f64 / capacity.memory_bytes as f64
        };
        cpu.max(mem)
    }

    /// Saturating subtraction in both dimensions.
    pub fn saturating_sub(&self, other: &ResourceSpec) -> ResourceSpec {
        ResourceSpec {
            cpu_millis: self.cpu_millis.saturating_sub(other.cpu_millis),
            memory_bytes: self.memory_bytes.saturating_sub(other.memory_bytes),
        }
    }
}

impl Add for ResourceSpec {
    type Output = ResourceSpec;
    fn add(self, rhs: ResourceSpec) -> ResourceSpec {
        ResourceSpec {
            cpu_millis: self.cpu_millis + rhs.cpu_millis,
            memory_bytes: self.memory_bytes + rhs.memory_bytes,
        }
    }
}

impl AddAssign for ResourceSpec {
    fn add_assign(&mut self, rhs: ResourceSpec) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceSpec {
    type Output = ResourceSpec;
    fn sub(self, rhs: ResourceSpec) -> ResourceSpec {
        self.saturating_sub(&rhs)
    }
}

impl SubAssign for ResourceSpec {
    fn sub_assign(&mut self, rhs: ResourceSpec) {
        *self = *self - rhs;
    }
}

impl fmt::Display for ResourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={}m mem={}Mi",
            self.cpu_millis,
            self.memory_bytes >> 20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_requires_both_dimensions() {
        let cap = ResourceSpec::new(1000, 1000);
        assert!(cap.fits(&ResourceSpec::new(1000, 1000)));
        assert!(!cap.fits(&ResourceSpec::new(1001, 10)));
        assert!(!cap.fits(&ResourceSpec::new(10, 1001)));
        assert!(cap.fits(&ResourceSpec::ZERO));
    }

    #[test]
    fn dominant_share_max_of_dims() {
        let cap = ResourceSpec::new(1000, 1 << 30);
        let r = ResourceSpec::new(250, 1 << 29);
        assert!((r.dominant_share(&cap) - 0.5).abs() < 1e-9);
        assert_eq!(ResourceSpec::ZERO.dominant_share(&ResourceSpec::ZERO), 0.0);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = ResourceSpec::new(100, 100);
        let b = ResourceSpec::new(300, 50);
        assert_eq!(a - b, ResourceSpec::new(0, 50));
        let mut c = a;
        c += b;
        assert_eq!(c, ResourceSpec::new(400, 150));
    }

    #[test]
    fn display_format() {
        let r = ResourceSpec::new(500, 256 << 20);
        assert_eq!(r.to_string(), "cpu=500m mem=256Mi");
    }

    #[test]
    fn worker_vm_matches_paper_scale() {
        let vm = ResourceSpec::worker_vm();
        assert_eq!(vm.cpu_millis, 4000);
        assert_eq!(vm.memory_bytes, 8 << 30);
    }
}
