//! Worker nodes (the paper's "VMs").

use std::collections::BTreeSet;
use std::fmt;

use crate::{PodId, ResourceSpec};

/// Opaque node identifier, unique within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u64);

impl NodeId {
    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Health of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeStatus {
    /// Schedulable and running pods.
    #[default]
    Ready,
    /// Cordoned: existing pods keep running, no new pods scheduled.
    Cordoned,
    /// Failed: pods are evicted and must be rescheduled.
    Down,
}

/// Static description of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Allocatable resources.
    pub capacity: ResourceSpec,
    /// Availability zone (see [`crate::topology`]).
    pub zone: String,
    /// Region containing the zone.
    pub region: String,
}

impl NodeSpec {
    /// Creates a node spec in the default zone/region.
    pub fn with_capacity(capacity: ResourceSpec) -> Self {
        NodeSpec {
            capacity,
            zone: "zone-a".to_string(),
            region: "region-1".to_string(),
        }
    }

    /// Sets the zone.
    pub fn in_zone(mut self, zone: impl Into<String>) -> Self {
        self.zone = zone.into();
        self
    }

    /// Sets the region.
    pub fn in_region(mut self, region: impl Into<String>) -> Self {
        self.region = region.into();
        self
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::with_capacity(ResourceSpec::worker_vm())
    }
}

/// A node's runtime state.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    spec: NodeSpec,
    status: NodeStatus,
    allocated: ResourceSpec,
    pods: BTreeSet<PodId>,
}

impl Node {
    pub(crate) fn new(id: NodeId, spec: NodeSpec) -> Self {
        Node {
            id,
            spec,
            status: NodeStatus::Ready,
            allocated: ResourceSpec::ZERO,
            pods: BTreeSet::new(),
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The static spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Current health.
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    pub(crate) fn set_status(&mut self, status: NodeStatus) {
        self.status = status;
    }

    /// Resources currently allocated to bound pods.
    pub fn allocated(&self) -> ResourceSpec {
        self.allocated
    }

    /// Resources still available for new pods.
    pub fn free(&self) -> ResourceSpec {
        self.spec.capacity.saturating_sub(&self.allocated)
    }

    /// True if a pod with `request` fits and the node accepts new pods.
    pub fn can_host(&self, request: &ResourceSpec) -> bool {
        self.status == NodeStatus::Ready && self.free().fits(request)
    }

    /// Pods currently bound to this node.
    pub fn pods(&self) -> impl Iterator<Item = PodId> + '_ {
        self.pods.iter().copied()
    }

    /// Number of bound pods.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Fraction of capacity allocated (dominant share).
    pub fn utilization(&self) -> f64 {
        self.allocated.dominant_share(&self.spec.capacity)
    }

    pub(crate) fn bind(&mut self, pod: PodId, request: ResourceSpec) {
        debug_assert!(self.can_host(&request), "bind without fit check");
        self.pods.insert(pod);
        self.allocated += request;
    }

    pub(crate) fn unbind(&mut self, pod: PodId, request: ResourceSpec) {
        if self.pods.remove(&pod) {
            self.allocated -= request;
        }
    }

    pub(crate) fn drain(&mut self) -> Vec<PodId> {
        self.allocated = ResourceSpec::ZERO;
        std::mem::take(&mut self.pods).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(
            NodeId(1),
            NodeSpec::with_capacity(ResourceSpec::new(1000, 1000)),
        )
    }

    #[test]
    fn bind_and_unbind_track_allocation() {
        let mut n = node();
        let r = ResourceSpec::new(400, 300);
        n.bind(PodId(1), r);
        assert_eq!(n.allocated(), r);
        assert_eq!(n.free(), ResourceSpec::new(600, 700));
        assert_eq!(n.pod_count(), 1);
        n.unbind(PodId(1), r);
        assert_eq!(n.allocated(), ResourceSpec::ZERO);
        assert_eq!(n.pod_count(), 0);
    }

    #[test]
    fn unbind_unknown_pod_is_noop() {
        let mut n = node();
        n.bind(PodId(1), ResourceSpec::new(100, 100));
        n.unbind(PodId(99), ResourceSpec::new(100, 100));
        assert_eq!(n.allocated(), ResourceSpec::new(100, 100));
    }

    #[test]
    fn can_host_respects_status() {
        let mut n = node();
        let r = ResourceSpec::new(100, 100);
        assert!(n.can_host(&r));
        n.set_status(NodeStatus::Cordoned);
        assert!(!n.can_host(&r));
        n.set_status(NodeStatus::Down);
        assert!(!n.can_host(&r));
    }

    #[test]
    fn drain_returns_pods_and_clears() {
        let mut n = node();
        n.bind(PodId(1), ResourceSpec::new(100, 100));
        n.bind(PodId(2), ResourceSpec::new(100, 100));
        let drained = n.drain();
        assert_eq!(drained, vec![PodId(1), PodId(2)]);
        assert_eq!(n.pod_count(), 0);
        assert_eq!(n.allocated(), ResourceSpec::ZERO);
    }

    #[test]
    fn utilization_dominant() {
        let mut n = node();
        n.bind(PodId(1), ResourceSpec::new(500, 100));
        assert!((n.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn spec_builders() {
        let s = NodeSpec::default().in_zone("z2").in_region("eu");
        assert_eq!(s.zone, "z2");
        assert_eq!(s.region, "eu");
        assert_eq!(NodeId(3).to_string(), "node-3");
    }
}
