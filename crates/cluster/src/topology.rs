//! Cluster topology: zones, regions, and network latency.
//!
//! The paper's future work (§VI) targets multi-datacenter deployment with
//! latency and jurisdiction requirements; `oprc-platform::multiregion`
//! builds on this model. Within the Fig. 3 experiment a single region with
//! one zone is used and only the intra-zone RTT matters.

use std::collections::BTreeMap;

use oprc_simcore::SimDuration;

/// Describes the regions/zones nodes can live in and the network latency
/// between them.
///
/// Latency lookup is symmetric and falls back from zone-pair to
/// region-pair to defaults, so sparse configuration works.
///
/// # Examples
///
/// ```
/// use oprc_cluster::topology::Topology;
/// use oprc_simcore::SimDuration;
///
/// let mut topo = Topology::new();
/// topo.add_zone("us-east", "use-az1");
/// topo.add_zone("us-east", "use-az2");
/// topo.add_zone("eu-west", "euw-az1");
/// topo.set_region_latency("us-east", "eu-west", SimDuration::from_millis(80));
///
/// assert_eq!(topo.latency("use-az1", "use-az1"), topo.intra_zone());
/// assert_eq!(topo.latency("use-az1", "euw-az1"), SimDuration::from_millis(80));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    /// zone → region
    zone_region: BTreeMap<String, String>,
    /// Unordered region pair → latency.
    region_latency: BTreeMap<(String, String), SimDuration>,
    intra_zone: SimDuration,
    inter_zone: SimDuration,
    default_inter_region: SimDuration,
    /// region → jurisdiction tag (e.g. "EU", "US") for placement
    /// constraints.
    jurisdictions: BTreeMap<String, String>,
}

impl Topology {
    /// Creates a topology with typical defaults: 0.2ms within a zone,
    /// 1ms across zones, 50ms across regions.
    pub fn new() -> Self {
        Topology {
            zone_region: BTreeMap::new(),
            region_latency: BTreeMap::new(),
            intra_zone: SimDuration::from_micros(200),
            inter_zone: SimDuration::from_millis(1),
            default_inter_region: SimDuration::from_millis(50),
            jurisdictions: BTreeMap::new(),
        }
    }

    /// Registers `zone` as part of `region`.
    pub fn add_zone(&mut self, region: impl Into<String>, zone: impl Into<String>) {
        self.zone_region.insert(zone.into(), region.into());
    }

    /// Tags a region with a jurisdiction label (for the paper's
    /// jurisdiction deployment constraint).
    pub fn set_jurisdiction(&mut self, region: impl Into<String>, tag: impl Into<String>) {
        self.jurisdictions.insert(region.into(), tag.into());
    }

    /// The jurisdiction tag of a region, if set.
    pub fn jurisdiction(&self, region: &str) -> Option<&str> {
        self.jurisdictions.get(region).map(String::as_str)
    }

    /// Regions known to the topology, in name order.
    pub fn regions(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.zone_region.values().map(String::as_str).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The region a zone belongs to, if registered.
    pub fn region_of(&self, zone: &str) -> Option<&str> {
        self.zone_region.get(zone).map(String::as_str)
    }

    /// Baseline latency within a single zone.
    pub fn intra_zone(&self) -> SimDuration {
        self.intra_zone
    }

    /// Overrides the intra-zone baseline.
    pub fn set_intra_zone(&mut self, d: SimDuration) {
        self.intra_zone = d;
    }

    /// Overrides the inter-zone (same region) baseline.
    pub fn set_inter_zone(&mut self, d: SimDuration) {
        self.inter_zone = d;
    }

    /// Sets the latency between two regions (symmetric).
    pub fn set_region_latency(
        &mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        d: SimDuration,
    ) {
        let (a, b) = ordered(a.into(), b.into());
        self.region_latency.insert((a, b), d);
    }

    /// One-way network latency between two zones.
    ///
    /// Unregistered zones are treated as singleton regions of their own
    /// name.
    pub fn latency(&self, zone_a: &str, zone_b: &str) -> SimDuration {
        if zone_a == zone_b {
            return self.intra_zone;
        }
        let ra = self.region_of(zone_a).unwrap_or(zone_a);
        let rb = self.region_of(zone_b).unwrap_or(zone_b);
        if ra == rb {
            return self.inter_zone;
        }
        let key = ordered(ra.to_string(), rb.to_string());
        self.region_latency
            .get(&key)
            .copied()
            .unwrap_or(self.default_inter_region)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::new()
    }
}

fn ordered(a: String, b: String) -> (String, String) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        let mut t = Topology::new();
        t.add_zone("us", "us-a");
        t.add_zone("us", "us-b");
        t.add_zone("eu", "eu-a");
        t.set_region_latency("us", "eu", SimDuration::from_millis(80));
        t
    }

    #[test]
    fn same_zone_uses_intra() {
        let t = topo();
        assert_eq!(t.latency("us-a", "us-a"), SimDuration::from_micros(200));
    }

    #[test]
    fn same_region_uses_inter_zone() {
        let t = topo();
        assert_eq!(t.latency("us-a", "us-b"), SimDuration::from_millis(1));
    }

    #[test]
    fn cross_region_uses_matrix_symmetric() {
        let t = topo();
        assert_eq!(t.latency("us-a", "eu-a"), SimDuration::from_millis(80));
        assert_eq!(t.latency("eu-a", "us-b"), SimDuration::from_millis(80));
    }

    #[test]
    fn unknown_region_pair_uses_default() {
        let mut t = topo();
        t.add_zone("ap", "ap-a");
        assert_eq!(t.latency("us-a", "ap-a"), SimDuration::from_millis(50));
    }

    #[test]
    fn unregistered_zone_is_own_region() {
        let t = topo();
        assert_eq!(
            t.latency("mystery-1", "mystery-2"),
            SimDuration::from_millis(50)
        );
        assert_eq!(t.latency("mystery-1", "mystery-1"), t.intra_zone());
    }

    #[test]
    fn jurisdictions() {
        let mut t = topo();
        t.set_jurisdiction("eu", "EU");
        assert_eq!(t.jurisdiction("eu"), Some("EU"));
        assert_eq!(t.jurisdiction("us"), None);
    }

    #[test]
    fn regions_deduped_sorted() {
        let t = topo();
        assert_eq!(t.regions(), vec!["eu", "us"]);
    }

    #[test]
    fn overrides() {
        let mut t = topo();
        t.set_intra_zone(SimDuration::from_micros(50));
        t.set_inter_zone(SimDuration::from_millis(2));
        assert_eq!(t.latency("us-a", "us-a"), SimDuration::from_micros(50));
        assert_eq!(t.latency("us-a", "us-b"), SimDuration::from_millis(2));
    }
}
