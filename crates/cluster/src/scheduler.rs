//! Pod-to-node placement strategies.
//!
//! The scheduler filters nodes that can host a pod (healthy + resource
//! fit) and scores survivors according to a [`Strategy`]. Determinism:
//! ties are broken by ascending [`NodeId`], so identical cluster states
//! always produce identical placements.

use crate::{Node, NodeId, ResourceSpec};

/// Placement scoring policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Prefer the most-utilized fitting node (consolidates load, frees
    /// whole nodes for scale-in).
    BinPack,
    /// Prefer the least-utilized fitting node (spreads load; the default,
    /// matching kube-scheduler's `LeastAllocated`).
    #[default]
    Spread,
    /// Prefer the node with the fewest pods regardless of size.
    LeastPods,
}

/// Picks a node for a pod with the given resource request.
///
/// Returns `None` when no healthy node fits the request. `nodes` may be
/// in any order; the choice depends only on node states.
pub fn pick(
    strategy: Strategy,
    nodes: impl IntoIterator<Item = impl std::borrow::Borrow<Node>>,
    request: &ResourceSpec,
) -> Option<NodeId> {
    let mut best: Option<(f64, usize, NodeId)> = None;
    for node in nodes {
        let node = node.borrow();
        if !node.can_host(request) {
            continue;
        }
        let util = node.utilization();
        let score = match strategy {
            Strategy::BinPack => -util, // lower is better ⇒ negate: prefer high util
            Strategy::Spread => util,
            Strategy::LeastPods => node.pod_count() as f64,
        };
        let candidate = (score, node.pod_count(), node.id());
        if best.is_none_or(|b| candidate < b) {
            best = Some(candidate);
        }
    }
    best.map(|(_, _, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, DeploymentSpec, NodeSpec, PodSpec};

    /// Builds a cluster with two nodes and one pod on node 0, returning
    /// the node list.
    fn two_nodes_one_loaded() -> Cluster {
        let mut c = Cluster::new();
        let cap = ResourceSpec::new(1000, 1000);
        c.add_node(NodeSpec::with_capacity(cap));
        c.add_node(NodeSpec::with_capacity(cap));
        c.apply(DeploymentSpec::new(
            "seed",
            1,
            PodSpec::new(ResourceSpec::new(400, 400)),
        ))
        .unwrap();
        c.reconcile();
        c
    }

    #[test]
    fn spread_prefers_empty_node() {
        let c = two_nodes_one_loaded();
        let loaded: Vec<NodeId> = c
            .nodes()
            .filter(|n| n.pod_count() > 0)
            .map(super::super::node::Node::id)
            .collect();
        let choice = pick(Strategy::Spread, c.nodes(), &ResourceSpec::new(100, 100)).unwrap();
        assert!(!loaded.contains(&choice));
    }

    #[test]
    fn binpack_prefers_loaded_node() {
        let c = two_nodes_one_loaded();
        let loaded: Vec<NodeId> = c
            .nodes()
            .filter(|n| n.pod_count() > 0)
            .map(super::super::node::Node::id)
            .collect();
        let choice = pick(Strategy::BinPack, c.nodes(), &ResourceSpec::new(100, 100)).unwrap();
        assert!(loaded.contains(&choice));
    }

    #[test]
    fn no_fit_returns_none() {
        let c = two_nodes_one_loaded();
        assert_eq!(
            pick(Strategy::Spread, c.nodes(), &ResourceSpec::new(5000, 1)),
            None
        );
    }

    #[test]
    fn ties_break_by_node_id() {
        let mut c = Cluster::new();
        let cap = ResourceSpec::new(1000, 1000);
        let n0 = c.add_node(NodeSpec::with_capacity(cap));
        c.add_node(NodeSpec::with_capacity(cap));
        let choice = pick(Strategy::Spread, c.nodes(), &ResourceSpec::new(1, 1)).unwrap();
        assert_eq!(choice, n0);
    }

    #[test]
    fn least_pods_ignores_size() {
        let mut c = Cluster::new();
        let cap = ResourceSpec::new(10_000, 10_000);
        c.add_node(NodeSpec::with_capacity(cap));
        c.add_node(NodeSpec::with_capacity(cap));
        // One big pod on node 0 (via spread, both empty → node 0).
        c.apply(DeploymentSpec::new(
            "big",
            1,
            PodSpec::new(ResourceSpec::new(9000, 9000)),
        ))
        .unwrap();
        c.reconcile();
        // Two small pods: with LeastPods the second lands on the big node
        // (1 pod each after the first small pod takes node 1).
        let first = pick(Strategy::LeastPods, c.nodes(), &ResourceSpec::new(1, 1)).unwrap();
        let big_node = c
            .nodes()
            .find(|n| n.pod_count() > 0)
            .map(super::super::node::Node::id)
            .unwrap();
        assert_ne!(first, big_node);
    }
}
