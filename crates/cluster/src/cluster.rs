//! The cluster state machine.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::scheduler::{self, Strategy};
use crate::{
    Deployment, DeploymentSpec, Node, NodeId, NodeSpec, NodeStatus, Pod, PodId, PodPhase, PodSpec,
};

/// Error raised by cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A deployment with this name already exists.
    DuplicateDeployment(String),
    /// No deployment with this name exists.
    UnknownDeployment(String),
    /// No node with this id exists.
    UnknownNode(NodeId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::DuplicateDeployment(n) => write!(f, "deployment '{n}' already exists"),
            ClusterError::UnknownDeployment(n) => write!(f, "unknown deployment '{n}'"),
            ClusterError::UnknownNode(id) => write!(f, "unknown node {id}"),
        }
    }
}

impl Error for ClusterError {}

/// A state change produced by [`Cluster::reconcile`] or failure
/// injection, for the DES harness to turn into timed events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterChange {
    /// A pending pod was bound to a node (container start begins).
    PodScheduled {
        /// The pod that was bound.
        pod: PodId,
        /// The node it was bound to.
        node: NodeId,
    },
    /// No node could host the pod; it remains pending.
    PodUnschedulable {
        /// The pod that could not be placed.
        pod: PodId,
    },
    /// A pod was removed (scale-in or deployment deletion).
    PodTerminated {
        /// The removed pod.
        pod: PodId,
    },
    /// A pod was evicted because its node went down; it is pending again.
    PodEvicted {
        /// The evicted pod.
        pod: PodId,
        /// The failed node it was running on.
        node: NodeId,
    },
}

/// A node lifecycle transition, recorded in order for observers that
/// react to topology — the platform's partition plane rebuilds its
/// ownership map from these.
///
/// The model stays passive: events accumulate inside the cluster and
/// are drained with [`Cluster::take_node_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEvent {
    /// A node was added via [`Cluster::add_node`].
    Joined(NodeId),
    /// A `Ready` node was cordoned (no new pods, existing ones stay).
    Cordoned(NodeId),
    /// A node went down; its pods were evicted.
    Down(NodeId),
    /// A previously cordoned or down node returned to `Ready`.
    Restored(NodeId),
}

impl NodeEvent {
    /// The node this event concerns.
    pub fn node(self) -> NodeId {
        match self {
            NodeEvent::Joined(id)
            | NodeEvent::Cordoned(id)
            | NodeEvent::Down(id)
            | NodeEvent::Restored(id) => id,
        }
    }
}

/// An in-memory model of a container-orchestration cluster.
///
/// See the [crate docs](crate) for the overall role. All operations are
/// deterministic; iteration orders are fixed by id ordering.
#[derive(Debug, Default)]
pub struct Cluster {
    nodes: BTreeMap<NodeId, Node>,
    pods: BTreeMap<PodId, Pod>,
    deployments: BTreeMap<String, Deployment>,
    strategy: Strategy,
    next_node: u64,
    next_pod: u64,
    node_events: Vec<NodeEvent>,
}

impl Cluster {
    /// Creates an empty cluster with the default (spread) scheduler.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Sets the scheduling strategy for subsequent reconciles.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Adds a node, returning its id and recording a
    /// [`NodeEvent::Joined`].
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.insert(id, Node::new(id, spec));
        self.node_events.push(NodeEvent::Joined(id));
        id
    }

    /// Drains the node lifecycle events recorded since the last call,
    /// oldest first.
    pub fn take_node_events(&mut self) -> Vec<NodeEvent> {
        std::mem::take(&mut self.node_events)
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Looks up a pod.
    pub fn pod(&self, id: PodId) -> Option<&Pod> {
        self.pods.get(&id)
    }

    /// All pods in id order.
    pub fn pods(&self) -> impl Iterator<Item = &Pod> {
        self.pods.values()
    }

    /// Looks up a deployment.
    pub fn deployment(&self, name: &str) -> Option<&Deployment> {
        self.deployments.get(name)
    }

    /// Number of `Ready` nodes.
    pub fn ready_nodes(&self) -> usize {
        self.nodes
            .values()
            .filter(|n| n.status() == NodeStatus::Ready)
            .count()
    }

    /// Creates a deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::DuplicateDeployment`] if the name is taken.
    pub fn apply(&mut self, spec: DeploymentSpec) -> Result<(), ClusterError> {
        if self.deployments.contains_key(&spec.name) {
            return Err(ClusterError::DuplicateDeployment(spec.name));
        }
        self.deployments
            .insert(spec.name.clone(), Deployment::new(spec));
        Ok(())
    }

    /// Changes a deployment's desired replicas (autoscaler entry point).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownDeployment`] for missing names.
    pub fn scale(&mut self, name: &str, replicas: u32) -> Result<(), ClusterError> {
        let dep = self
            .deployments
            .get_mut(name)
            .ok_or_else(|| ClusterError::UnknownDeployment(name.to_string()))?;
        dep.set_replicas(replicas);
        Ok(())
    }

    /// Updates a deployment's pod template, starting a rolling update
    /// that subsequent [`Cluster::reconcile`] calls drive to completion
    /// within the spec's [`crate::RolloutConfig`] limits.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownDeployment`] for missing names.
    pub fn set_template(&mut self, name: &str, template: PodSpec) -> Result<(), ClusterError> {
        let dep = self
            .deployments
            .get_mut(name)
            .ok_or_else(|| ClusterError::UnknownDeployment(name.to_string()))?;
        dep.set_template(template);
        Ok(())
    }

    /// True while `name` has pods from an older template revision.
    pub fn rollout_in_progress(&self, name: &str) -> bool {
        let Some(dep) = self.deployments.get(name) else {
            return false;
        };
        dep.pods.iter().any(|p| {
            self.pods
                .get(p)
                .is_some_and(|pod| pod.revision() < dep.revision)
        })
    }

    /// Deletes a deployment, terminating its pods.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownDeployment`] for missing names.
    pub fn delete_deployment(&mut self, name: &str) -> Result<Vec<ClusterChange>, ClusterError> {
        let dep = self
            .deployments
            .remove(name)
            .ok_or_else(|| ClusterError::UnknownDeployment(name.to_string()))?;
        let mut changes = Vec::new();
        for pod_id in dep.pods {
            self.remove_pod(pod_id);
            changes.push(ClusterChange::PodTerminated { pod: pod_id });
        }
        Ok(changes)
    }

    /// Marks a node's health, evicting pods when it goes [`NodeStatus::Down`].
    ///
    /// Evicted pods return to `Pending` and are rescheduled on the next
    /// [`Cluster::reconcile`].
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for missing ids.
    pub fn set_node_status(
        &mut self,
        id: NodeId,
        status: NodeStatus,
    ) -> Result<Vec<ClusterChange>, ClusterError> {
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or(ClusterError::UnknownNode(id))?;
        let previous = node.status();
        node.set_status(status);
        if previous != status {
            let event = match status {
                NodeStatus::Ready => NodeEvent::Restored(id),
                NodeStatus::Cordoned => NodeEvent::Cordoned(id),
                NodeStatus::Down => NodeEvent::Down(id),
            };
            self.node_events.push(event);
        }
        let mut changes = Vec::new();
        if status == NodeStatus::Down {
            for pod_id in node.drain() {
                if let Some(pod) = self.pods.get_mut(&pod_id) {
                    pod.unbind();
                }
                changes.push(ClusterChange::PodEvicted {
                    pod: pod_id,
                    node: id,
                });
            }
        }
        Ok(changes)
    }

    /// Marks a scheduled pod as running (container start finished).
    pub fn mark_pod_running(&mut self, id: PodId) {
        if let Some(pod) = self.pods.get_mut(&id) {
            if pod.phase() == PodPhase::Starting {
                pod.set_phase(PodPhase::Running);
            }
        }
    }

    /// Running pods of a deployment, in id order.
    pub fn running_pods(&self, deployment: &str) -> Vec<PodId> {
        self.deployments
            .get(deployment)
            .map(|d| {
                d.pods
                    .iter()
                    .copied()
                    .filter(|p| {
                        self.pods
                            .get(p)
                            .is_some_and(|pod| pod.phase() == PodPhase::Running)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Drives actual state toward desired state:
    ///
    /// 1. creates pods for under-replicated deployments;
    /// 2. terminates newest-first for over-replicated deployments;
    /// 3. binds pending pods to nodes via the configured strategy.
    ///
    /// Returns the changes made, in a deterministic order.
    pub fn reconcile(&mut self) -> Vec<ClusterChange> {
        let mut changes = Vec::new();

        // 1 & 2: replica counts and rolling updates.
        let names: Vec<String> = self.deployments.keys().cloned().collect();
        for name in names {
            let (want, template, revision, rollout) = {
                let d = &self.deployments[&name];
                (
                    d.replicas() as usize,
                    d.spec().template.clone(),
                    d.revision,
                    d.spec().rollout,
                )
            };
            let pod_list: Vec<PodId> = self.deployments[&name].pods.clone();
            let current: Vec<PodId> = pod_list
                .iter()
                .copied()
                .filter(|p| {
                    self.pods
                        .get(p)
                        .is_some_and(|pod| pod.revision() == revision)
                })
                .collect();
            let stale: Vec<PodId> = pod_list
                .iter()
                .copied()
                .filter(|p| {
                    self.pods
                        .get(p)
                        .is_some_and(|pod| pod.revision() < revision)
                })
                .collect();

            // Scale in: drop newest current-revision pods first, then
            // stale pods.
            let total = current.len() + stale.len();
            if total > want && stale.is_empty() {
                let excess: Vec<PodId> = {
                    let d = self.deployments.get_mut(&name).expect("exists");
                    d.pods.split_off(want)
                };
                for pod_id in excess {
                    self.remove_pod(pod_id);
                    changes.push(ClusterChange::PodTerminated { pod: pod_id });
                }
                continue;
            }

            // Rollout step 1 — surge: create current-revision pods while
            // under both the desired count and the surge ceiling.
            let ceiling = want + rollout.max_surge as usize;
            let mut total = current.len() + stale.len();
            let mut current_count = current.len();
            while current_count < want && total < ceiling {
                let id = PodId(self.next_pod);
                self.next_pod += 1;
                self.pods
                    .insert(id, Pod::new(id, name.clone(), template.clone(), revision));
                self.deployments
                    .get_mut(&name)
                    .expect("exists")
                    .pods
                    .push(id);
                current_count += 1;
                total += 1;
            }

            // Rollout step 2 — retire stale pods while *running*
            // availability stays at or above `want - max_unavailable`.
            let is_running = |pods: &BTreeMap<PodId, Pod>, p: &PodId| {
                pods.get(p)
                    .is_some_and(|pod| pod.phase() == PodPhase::Running)
            };
            let running_current = current.iter().filter(|p| is_running(&self.pods, p)).count();
            let (running_stale, idle_stale): (Vec<PodId>, Vec<PodId>) =
                stale.into_iter().partition(|p| is_running(&self.pods, p));
            // Non-running stale pods provide no availability: retire
            // immediately.
            for pod_id in idle_stale {
                self.retire_pod(&name, pod_id, &mut changes);
            }
            let floor = want.saturating_sub(rollout.max_unavailable as usize);
            let mut available = running_current + running_stale.len();
            for pod_id in running_stale {
                if available <= floor {
                    break; // wait for replacements to become Running
                }
                self.retire_pod(&name, pod_id, &mut changes);
                available -= 1;
            }
        }

        // 3: bind pending pods.
        let pending: Vec<PodId> = self
            .pods
            .values()
            .filter(|p| p.phase() == PodPhase::Pending)
            .map(super::pod::Pod::id)
            .collect();
        for pod_id in pending {
            let request = self.pods[&pod_id].spec().request;
            match scheduler::pick(self.strategy, self.nodes.values(), &request) {
                Some(node_id) => {
                    self.nodes
                        .get_mut(&node_id)
                        .expect("picked node exists")
                        .bind(pod_id, request);
                    self.pods
                        .get_mut(&pod_id)
                        .expect("pending pod exists")
                        .bind_to(node_id);
                    changes.push(ClusterChange::PodScheduled {
                        pod: pod_id,
                        node: node_id,
                    });
                }
                None => changes.push(ClusterChange::PodUnschedulable { pod: pod_id }),
            }
        }
        changes
    }

    /// Removes a pod and its deployment membership (rollout retirement).
    fn retire_pod(&mut self, deployment: &str, id: PodId, changes: &mut Vec<ClusterChange>) {
        self.remove_pod(id);
        if let Some(d) = self.deployments.get_mut(deployment) {
            d.pods.retain(|p| *p != id);
        }
        changes.push(ClusterChange::PodTerminated { pod: id });
    }

    fn remove_pod(&mut self, id: PodId) {
        if let Some(pod) = self.pods.remove(&id) {
            if let Some(node_id) = pod.node() {
                if let Some(node) = self.nodes.get_mut(&node_id) {
                    node.unbind(id, pod.spec().request);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PodSpec;
    use crate::ResourceSpec;

    fn small_pod() -> PodSpec {
        PodSpec::new(ResourceSpec::new(100, 100))
    }

    fn cluster_with_nodes(n: usize) -> Cluster {
        let mut c = Cluster::new();
        for _ in 0..n {
            c.add_node(NodeSpec::with_capacity(ResourceSpec::new(1000, 1000)));
        }
        c
    }

    #[test]
    fn reconcile_creates_and_schedules() {
        let mut c = cluster_with_nodes(2);
        c.apply(DeploymentSpec::new("d", 3, small_pod())).unwrap();
        let changes = c.reconcile();
        let scheduled = changes
            .iter()
            .filter(|ch| matches!(ch, ClusterChange::PodScheduled { .. }))
            .count();
        assert_eq!(scheduled, 3);
        // Spread: 2 on one node max.
        assert!(c.nodes().all(|n| n.pod_count() <= 2));
    }

    #[test]
    fn reconcile_is_idempotent() {
        let mut c = cluster_with_nodes(2);
        c.apply(DeploymentSpec::new("d", 2, small_pod())).unwrap();
        c.reconcile();
        assert!(c.reconcile().is_empty());
    }

    #[test]
    fn scale_up_and_down() {
        let mut c = cluster_with_nodes(2);
        c.apply(DeploymentSpec::new("d", 1, small_pod())).unwrap();
        c.reconcile();
        c.scale("d", 4).unwrap();
        let up = c.reconcile();
        assert_eq!(up.len(), 3);
        c.scale("d", 1).unwrap();
        let down = c.reconcile();
        assert_eq!(
            down.iter()
                .filter(|ch| matches!(ch, ClusterChange::PodTerminated { .. }))
                .count(),
            3
        );
        assert_eq!(c.deployment("d").unwrap().pod_ids().len(), 1);
        // Node allocations released.
        let total: u64 = c.nodes().map(|n| n.allocated().cpu_millis).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn unschedulable_when_full() {
        let mut c = cluster_with_nodes(1);
        c.apply(DeploymentSpec::new(
            "d",
            2,
            PodSpec::new(ResourceSpec::new(800, 800)),
        ))
        .unwrap();
        let changes = c.reconcile();
        assert!(changes.contains(&ClusterChange::PodUnschedulable {
            pod: c.deployment("d").unwrap().pod_ids()[1]
        }));
        // Adding capacity fixes it on the next reconcile.
        c.add_node(NodeSpec::with_capacity(ResourceSpec::new(1000, 1000)));
        let changes = c.reconcile();
        assert!(matches!(changes[0], ClusterChange::PodScheduled { .. }));
    }

    #[test]
    fn node_failure_evicts_and_reschedules() {
        let mut c = cluster_with_nodes(2);
        c.apply(DeploymentSpec::new("d", 2, small_pod())).unwrap();
        c.reconcile();
        for p in c.pods().map(super::super::pod::Pod::id).collect::<Vec<_>>() {
            c.mark_pod_running(p);
        }
        let victim = c.pods().next().unwrap().node().unwrap();
        let evictions = c.set_node_status(victim, NodeStatus::Down).unwrap();
        assert!(!evictions.is_empty());
        let changes = c.reconcile();
        // All evicted pods land on the surviving node.
        for ch in &changes {
            if let ClusterChange::PodScheduled { node, .. } = ch {
                assert_ne!(*node, victim);
            }
        }
        assert_eq!(c.running_pods("d").len(), 2 - evictions.len());
    }

    #[test]
    fn mark_running_only_from_starting() {
        let mut c = cluster_with_nodes(1);
        c.apply(DeploymentSpec::new("d", 1, small_pod())).unwrap();
        c.reconcile();
        let pod = c.pods().next().unwrap().id();
        c.mark_pod_running(pod);
        assert_eq!(c.running_pods("d"), vec![pod]);
        // Idempotent.
        c.mark_pod_running(pod);
        assert_eq!(c.running_pods("d").len(), 1);
    }

    #[test]
    fn delete_deployment_terminates_pods() {
        let mut c = cluster_with_nodes(1);
        c.apply(DeploymentSpec::new("d", 2, small_pod())).unwrap();
        c.reconcile();
        let changes = c.delete_deployment("d").unwrap();
        assert_eq!(changes.len(), 2);
        assert_eq!(c.pods().count(), 0);
        assert!(c.deployment("d").is_none());
        assert_eq!(
            c.delete_deployment("d"),
            Err(ClusterError::UnknownDeployment("d".to_string()))
        );
    }

    #[test]
    fn duplicate_apply_rejected() {
        let mut c = cluster_with_nodes(1);
        c.apply(DeploymentSpec::new("d", 1, small_pod())).unwrap();
        assert_eq!(
            c.apply(DeploymentSpec::new("d", 1, small_pod())),
            Err(ClusterError::DuplicateDeployment("d".to_string()))
        );
    }

    #[test]
    fn errors_for_unknown_entities() {
        let mut c = Cluster::new();
        assert!(matches!(
            c.scale("x", 1),
            Err(ClusterError::UnknownDeployment(_))
        ));
        assert!(matches!(
            c.set_node_status(NodeId(9), NodeStatus::Down),
            Err(ClusterError::UnknownNode(_))
        ));
    }

    #[test]
    fn cordoned_node_receives_no_new_pods() {
        let mut c = cluster_with_nodes(2);
        let cordoned = c.nodes().next().unwrap().id();
        c.set_node_status(cordoned, NodeStatus::Cordoned).unwrap();
        c.apply(DeploymentSpec::new("d", 2, small_pod())).unwrap();
        c.reconcile();
        assert_eq!(c.node(cordoned).unwrap().pod_count(), 0);
    }

    /// Drives reconcile+mark cycles until quiescent, returning cycles
    /// used.
    fn settle(c: &mut Cluster, max_cycles: usize) -> usize {
        for cycle in 0..max_cycles {
            let changes = c.reconcile();
            for p in c.pods().map(super::super::pod::Pod::id).collect::<Vec<_>>() {
                c.mark_pod_running(p);
            }
            if changes.is_empty() {
                return cycle;
            }
        }
        max_cycles
    }

    #[test]
    fn rolling_update_replaces_all_pods_zero_downtime() {
        let mut c = cluster_with_nodes(3);
        c.apply(DeploymentSpec::new("d", 4, small_pod())).unwrap();
        settle(&mut c, 5);
        let old_pods: Vec<PodId> = c.deployment("d").unwrap().pod_ids().to_vec();
        assert_eq!(c.running_pods("d").len(), 4);

        // New template (different resources) starts a rollout.
        c.set_template("d", PodSpec::new(ResourceSpec::new(150, 150)))
            .unwrap();
        assert!(c.rollout_in_progress("d"));

        // Drive to completion; with surge 1 / unavailable 0 the running
        // count never drops below 4.
        for _ in 0..20 {
            if !c.rollout_in_progress("d") {
                break;
            }
            c.reconcile();
            assert!(
                c.running_pods("d").len() >= 4,
                "availability dropped during zero-downtime rollout"
            );
            for p in c.pods().map(super::super::pod::Pod::id).collect::<Vec<_>>() {
                c.mark_pod_running(p);
            }
        }
        assert!(!c.rollout_in_progress("d"));
        let new_pods: Vec<PodId> = c.deployment("d").unwrap().pod_ids().to_vec();
        assert_eq!(new_pods.len(), 4);
        for p in &new_pods {
            assert!(!old_pods.contains(p), "old pod survived the rollout");
            assert_eq!(c.pod(*p).unwrap().revision(), 2);
            assert_eq!(c.pod(*p).unwrap().spec().request.cpu_millis, 150);
        }
    }

    #[test]
    fn rollout_with_unavailability_budget_is_faster() {
        use crate::RolloutConfig;
        let drive = |rollout: RolloutConfig| -> usize {
            let mut c = cluster_with_nodes(4);
            c.apply(DeploymentSpec::new("d", 6, small_pod()).rollout(rollout))
                .unwrap();
            settle(&mut c, 5);
            c.set_template("d", PodSpec::new(ResourceSpec::new(120, 120)))
                .unwrap();
            let mut cycles = 0;
            while c.rollout_in_progress("d") && cycles < 30 {
                c.reconcile();
                for p in c.pods().map(super::super::pod::Pod::id).collect::<Vec<_>>() {
                    c.mark_pod_running(p);
                }
                cycles += 1;
            }
            assert!(!c.rollout_in_progress("d"), "rollout stuck");
            cycles
        };
        let conservative = drive(RolloutConfig {
            max_surge: 1,
            max_unavailable: 0,
        });
        let aggressive = drive(RolloutConfig {
            max_surge: 3,
            max_unavailable: 3,
        });
        assert!(
            aggressive < conservative,
            "bigger budgets should finish faster: {aggressive} vs {conservative}"
        );
    }

    #[test]
    fn identical_template_is_not_a_rollout() {
        let mut c = cluster_with_nodes(2);
        c.apply(DeploymentSpec::new("d", 2, small_pod())).unwrap();
        settle(&mut c, 5);
        c.set_template("d", small_pod()).unwrap();
        assert!(!c.rollout_in_progress("d"));
        assert!(c.reconcile().is_empty());
    }

    #[test]
    fn scale_during_rollout_converges() {
        let mut c = cluster_with_nodes(3);
        c.apply(DeploymentSpec::new("d", 3, small_pod())).unwrap();
        settle(&mut c, 5);
        c.set_template("d", PodSpec::new(ResourceSpec::new(120, 120)))
            .unwrap();
        c.reconcile(); // rollout begins
        c.scale("d", 5).unwrap();
        settle(&mut c, 30);
        assert!(!c.rollout_in_progress("d"));
        assert_eq!(c.running_pods("d").len(), 5);
        for p in c.deployment("d").unwrap().pod_ids() {
            assert_eq!(c.pod(*p).unwrap().revision(), 2);
        }
    }

    #[test]
    fn node_lifecycle_events_record_and_drain() {
        let mut c = Cluster::new();
        let a = c.add_node(NodeSpec::with_capacity(ResourceSpec::new(1000, 1000)));
        let b = c.add_node(NodeSpec::with_capacity(ResourceSpec::new(1000, 1000)));
        c.set_node_status(a, NodeStatus::Down).unwrap();
        c.set_node_status(a, NodeStatus::Down).unwrap(); // no-op transition
        c.set_node_status(a, NodeStatus::Ready).unwrap();
        c.set_node_status(b, NodeStatus::Cordoned).unwrap();
        let events = c.take_node_events();
        assert_eq!(
            events,
            vec![
                NodeEvent::Joined(a),
                NodeEvent::Joined(b),
                NodeEvent::Down(a),
                NodeEvent::Restored(a),
                NodeEvent::Cordoned(b),
            ]
        );
        assert_eq!(events[2].node(), a);
        // Drained: a second take returns nothing.
        assert!(c.take_node_events().is_empty());
    }

    #[test]
    fn ready_nodes_counts_health() {
        let mut c = cluster_with_nodes(3);
        let id = c.nodes().next().unwrap().id();
        c.set_node_status(id, NodeStatus::Down).unwrap();
        assert_eq!(c.ready_nodes(), 2);
    }
}
