//! Pods: the unit of scheduling.

use std::collections::BTreeMap;
use std::fmt;

use crate::{NodeId, ResourceSpec};

/// Opaque pod identifier, unique within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PodId(pub(crate) u64);

impl PodId {
    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod-{}", self.0)
    }
}

/// Lifecycle phase of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// Created, awaiting scheduling.
    Pending,
    /// Bound to a node, container starting (image pull / cold start).
    Starting,
    /// Serving.
    Running,
    /// Being removed.
    Terminating,
}

/// Template describing the pods of a deployment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PodSpec {
    /// Resource request used for scheduling.
    pub request: ResourceSpec,
    /// Free-form labels (used by services and anti-affinity-style rules).
    pub labels: BTreeMap<String, String>,
}

impl PodSpec {
    /// Creates a pod spec with the given resource request.
    pub fn new(request: ResourceSpec) -> Self {
        PodSpec {
            request,
            labels: BTreeMap::new(),
        }
    }

    /// Adds a label.
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }
}

/// A pod's runtime state.
#[derive(Debug, Clone)]
pub struct Pod {
    id: PodId,
    deployment: String,
    spec: PodSpec,
    phase: PodPhase,
    node: Option<NodeId>,
    revision: u64,
}

impl Pod {
    pub(crate) fn new(id: PodId, deployment: String, spec: PodSpec, revision: u64) -> Self {
        Pod {
            id,
            deployment,
            spec,
            phase: PodPhase::Pending,
            node: None,
            revision,
        }
    }

    /// The deployment template revision this pod was created from.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The pod's id.
    pub fn id(&self) -> PodId {
        self.id
    }

    /// Name of the owning deployment.
    pub fn deployment(&self) -> &str {
        &self.deployment
    }

    /// The pod template it was created from.
    pub fn spec(&self) -> &PodSpec {
        &self.spec
    }

    /// Current phase.
    pub fn phase(&self) -> PodPhase {
        self.phase
    }

    /// The node the pod is bound to, if scheduled.
    pub fn node(&self) -> Option<NodeId> {
        self.node
    }

    pub(crate) fn set_phase(&mut self, phase: PodPhase) {
        self.phase = phase;
    }

    pub(crate) fn bind_to(&mut self, node: NodeId) {
        self.node = Some(node);
        self.phase = PodPhase::Starting;
    }

    pub(crate) fn unbind(&mut self) {
        self.node = None;
        self.phase = PodPhase::Pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_transitions() {
        let mut p = Pod::new(PodId(1), "dep".into(), PodSpec::default(), 1);
        assert_eq!(p.phase(), PodPhase::Pending);
        assert_eq!(p.node(), None);
        p.bind_to(NodeId(2));
        assert_eq!(p.phase(), PodPhase::Starting);
        assert_eq!(p.node(), Some(NodeId(2)));
        p.set_phase(PodPhase::Running);
        assert_eq!(p.phase(), PodPhase::Running);
        assert_eq!(p.revision(), 1);
        p.unbind();
        assert_eq!(p.phase(), PodPhase::Pending);
        assert_eq!(p.node(), None);
    }

    #[test]
    fn labels_builder() {
        let spec = PodSpec::new(ResourceSpec::new(1, 1))
            .label("app", "resize")
            .label("tier", "fn");
        assert_eq!(spec.labels["app"], "resize");
        assert_eq!(spec.labels.len(), 2);
    }

    #[test]
    fn display_ids() {
        assert_eq!(PodId(7).to_string(), "pod-7");
        assert_eq!(PodId(7).as_u64(), 7);
    }
}
