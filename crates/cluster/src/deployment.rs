//! Deployments: declared replica sets of identical pods.

use crate::PodSpec;

/// Rolling-update limits (absolute counts, like Kubernetes with
/// absolute values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutConfig {
    /// Extra pods allowed above `replicas` during a rollout.
    pub max_surge: u32,
    /// Pods allowed below `replicas` during a rollout.
    pub max_unavailable: u32,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            max_surge: 1,
            max_unavailable: 0,
        }
    }
}

/// Desired state for a group of identical pods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentSpec {
    /// Unique deployment name.
    pub name: String,
    /// Desired replica count.
    pub replicas: u32,
    /// Template for each replica.
    pub template: PodSpec,
    /// Rolling-update limits.
    pub rollout: RolloutConfig,
}

impl DeploymentSpec {
    /// Creates a deployment spec with default rollout limits
    /// (surge 1, unavailable 0 — a conservative, zero-downtime rollout).
    pub fn new(name: impl Into<String>, replicas: u32, template: PodSpec) -> Self {
        DeploymentSpec {
            name: name.into(),
            replicas,
            template,
            rollout: RolloutConfig::default(),
        }
    }

    /// Overrides the rollout limits.
    pub fn rollout(mut self, rollout: RolloutConfig) -> Self {
        self.rollout = rollout;
        self
    }
}

/// A deployment's tracked state.
#[derive(Debug, Clone)]
pub struct Deployment {
    spec: DeploymentSpec,
    /// Pods created for this deployment, newest last.
    pub(crate) pods: Vec<crate::PodId>,
    /// Current template revision, bumped by template updates.
    pub(crate) revision: u64,
}

impl Deployment {
    pub(crate) fn new(spec: DeploymentSpec) -> Self {
        Deployment {
            spec,
            pods: Vec::new(),
            revision: 1,
        }
    }

    /// The current template revision.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    pub(crate) fn set_template(&mut self, template: PodSpec) {
        if self.spec.template != template {
            self.spec.template = template;
            self.revision += 1;
        }
    }

    /// The declared spec.
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// Desired replicas.
    pub fn replicas(&self) -> u32 {
        self.spec.replicas
    }

    pub(crate) fn set_replicas(&mut self, replicas: u32) {
        self.spec.replicas = replicas;
    }

    /// Ids of pods currently owned by this deployment.
    pub fn pod_ids(&self) -> &[crate::PodId] {
        &self.pods
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceSpec;

    #[test]
    fn spec_round_trip() {
        let spec = DeploymentSpec::new("web", 3, PodSpec::new(ResourceSpec::new(100, 100)));
        let mut d = Deployment::new(spec.clone());
        assert_eq!(d.spec(), &spec);
        assert_eq!(d.replicas(), 3);
        d.set_replicas(5);
        assert_eq!(d.replicas(), 5);
        assert!(d.pod_ids().is_empty());
        assert_eq!(d.revision(), 1);
        d.set_template(PodSpec::new(ResourceSpec::new(200, 200)));
        assert_eq!(d.revision(), 2);
        // Identical template is a no-op.
        d.set_template(PodSpec::new(ResourceSpec::new(200, 200)));
        assert_eq!(d.revision(), 2);
    }
}
