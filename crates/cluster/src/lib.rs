//! A Kubernetes-like cluster substrate model.
//!
//! The paper deploys Oparaca on Kubernetes (§IV step 1) and evaluates it
//! on clusters of 3–12 worker VMs (§V). This crate models the parts of a
//! container orchestrator that the evaluation's behaviour depends on:
//!
//! - [`Node`]s (worker VMs) with CPU/memory capacity and zone/region
//!   placement ([`topology`]);
//! - [`PodSpec`]s grouped into [`Deployment`]s with declared replicas;
//! - a [`scheduler`] that binds pending pods to nodes (bin-pack or
//!   spread), respecting resource fit and node health;
//! - [`service`] endpoint pools with pluggable load-balancing policies;
//! - failure injection: marking a node down evicts its pods and the next
//!   [`Cluster::reconcile`] reschedules them.
//!
//! The model is *passive*: methods mutate state and return
//! [`ClusterChange`]s describing what happened; the DES harness in
//! `oprc-platform` turns those into timed events (image pull, container
//! start, …).
//!
//! # Examples
//!
//! ```
//! use oprc_cluster::{Cluster, DeploymentSpec, NodeSpec, PodSpec, ResourceSpec};
//!
//! let mut cluster = Cluster::new();
//! for _ in 0..3 {
//!     cluster.add_node(NodeSpec::with_capacity(ResourceSpec::new(4000, 8 << 30)));
//! }
//! cluster.apply(DeploymentSpec::new(
//!     "fn-resize",
//!     3,
//!     PodSpec::new(ResourceSpec::new(1000, 1 << 30)),
//! ))?;
//! let changes = cluster.reconcile();
//! assert_eq!(changes.len(), 3); // three pods scheduled
//! # Ok::<(), oprc_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod deployment;
mod node;
mod pod;
mod resources;

pub mod scheduler;
pub mod service;
pub mod topology;

pub use cluster::{Cluster, ClusterChange, ClusterError, NodeEvent};
pub use deployment::{Deployment, DeploymentSpec, RolloutConfig};
pub use node::{Node, NodeId, NodeSpec, NodeStatus};
pub use pod::{Pod, PodId, PodPhase, PodSpec};
pub use resources::ResourceSpec;
