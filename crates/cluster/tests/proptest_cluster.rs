//! Property-based tests: cluster invariants under arbitrary operation
//! sequences.

use oprc_cluster::{
    Cluster, DeploymentSpec, NodeSpec, NodeStatus, PodPhase, PodSpec, ResourceSpec,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AddNode,
    KillNode(u16),
    ReviveNode(u16),
    Scale(u16, u8),
    SetTemplate(u16, u16),
    Reconcile,
    MarkRunning,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::AddNode),
            any::<u16>().prop_map(Op::KillNode),
            any::<u16>().prop_map(Op::ReviveNode),
            (any::<u16>(), any::<u8>()).prop_map(|(d, r)| Op::Scale(d, r)),
            (any::<u16>(), any::<u16>()).prop_map(|(d, t)| Op::SetTemplate(d, t)),
            Just(Op::Reconcile),
            Just(Op::MarkRunning),
        ],
        1..80,
    )
}

const DEPLOYMENTS: [&str; 2] = ["alpha", "beta"];

fn check_invariants(c: &Cluster) {
    // 1. Node allocation never exceeds capacity, and equals the sum of
    //    its bound pods' requests.
    for node in c.nodes() {
        let cap = node.spec().capacity;
        let alloc = node.allocated();
        assert!(
            cap.fits(&alloc),
            "node {} over-allocated: {alloc} > {cap}",
            node.id()
        );
        let sum: u64 = node
            .pods()
            .filter_map(|p| c.pod(p))
            .map(|p| p.spec().request.cpu_millis)
            .sum();
        assert_eq!(alloc.cpu_millis, sum, "allocation drift on {}", node.id());
    }
    // 2. Every bound pod's node exists, is not Down, and lists the pod.
    for pod in c.pods() {
        if let Some(nid) = pod.node() {
            let node = c.node(nid).expect("bound node exists");
            assert_ne!(node.status(), NodeStatus::Down, "pod bound to a Down node");
            assert!(
                node.pods().any(|p| p == pod.id()),
                "node does not list its pod"
            );
        } else {
            assert_eq!(
                pod.phase(),
                PodPhase::Pending,
                "unbound pod must be pending"
            );
        }
    }
    // 3. Deployment membership is consistent with pod ownership.
    for name in DEPLOYMENTS {
        if let Some(dep) = c.deployment(name) {
            for pid in dep.pod_ids() {
                let pod = c.pod(*pid).expect("deployment pod exists");
                assert_eq!(pod.deployment(), name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_churn(ops in arb_ops()) {
        let mut c = Cluster::new();
        for _ in 0..2 {
            c.add_node(NodeSpec::with_capacity(ResourceSpec::new(2000, 2 << 30)));
        }
        for name in DEPLOYMENTS {
            c.apply(DeploymentSpec::new(
                name,
                2,
                PodSpec::new(ResourceSpec::new(500, 1 << 28)),
            ))
            .unwrap();
        }
        let mut nodes: Vec<_> = c.nodes().map(oprc_cluster::Node::id).collect();
        for op in ops {
            match op {
                Op::AddNode => {
                    if nodes.len() < 8 {
                        nodes.push(
                            c.add_node(NodeSpec::with_capacity(ResourceSpec::new(2000, 2 << 30))),
                        );
                    }
                }
                Op::KillNode(x) => {
                    let id = nodes[x as usize % nodes.len()];
                    let _ = c.set_node_status(id, NodeStatus::Down);
                }
                Op::ReviveNode(x) => {
                    let id = nodes[x as usize % nodes.len()];
                    let _ = c.set_node_status(id, NodeStatus::Ready);
                }
                Op::Scale(d, r) => {
                    let name = DEPLOYMENTS[d as usize % DEPLOYMENTS.len()];
                    let _ = c.scale(name, (r % 8) as u32);
                }
                Op::SetTemplate(d, t) => {
                    let name = DEPLOYMENTS[d as usize % DEPLOYMENTS.len()];
                    let cpu = 200 + (t as u64 % 4) * 100;
                    let _ = c.set_template(name, PodSpec::new(ResourceSpec::new(cpu, 1 << 28)));
                }
                Op::Reconcile => {
                    c.reconcile();
                }
                Op::MarkRunning => {
                    for p in c.pods().map(oprc_cluster::Pod::id).collect::<Vec<_>>() {
                        c.mark_pod_running(p);
                    }
                }
            }
            check_invariants(&c);
        }
        // Drive to quiescence: rollouts and replica counts converge.
        for _ in 0..40 {
            let changes = c.reconcile();
            for p in c.pods().map(oprc_cluster::Pod::id).collect::<Vec<_>>() {
                c.mark_pod_running(p);
            }
            check_invariants(&c);
            if changes.is_empty() {
                break;
            }
        }
        // After convergence no deployment is mid-rollout — unless it is
        // genuinely blocked: all nodes dead, or replacement pods stuck
        // Pending because the surviving nodes have no headroom (with
        // max_unavailable = 0 a rollout cannot retire old pods until
        // their replacements run, exactly like Kubernetes).
        for name in DEPLOYMENTS {
            let dep = c.deployment(name).unwrap();
            let capacity_blocked = dep.pod_ids().iter().any(|p| {
                c.pod(*p).is_some_and(|pod| pod.phase() == PodPhase::Pending)
            });
            if c.ready_nodes() > 0 && !capacity_blocked {
                let want = dep.replicas() as usize;
                let have = dep.pod_ids().len();
                assert!(
                    have <= want + 1,
                    "{name}: {have} pods for {want} replicas after convergence"
                );
            }
        }
    }
}
