//! Criterion wrapper over the Fig. 3 simulation: wall-time of one
//! deterministic run per variant (short window), keeping the experiment
//! wired into `cargo bench`. The full-scale reproduction with the
//! paper-matching window is the `fig3` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oprc_platform::sim::{self, ExperimentConfig, SystemVariant};
use oprc_simcore::SimDuration;

fn quick(variant: SystemVariant, vms: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig3(variant, vms);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.measure = SimDuration::from_secs(2);
    cfg.clients_per_vm = 20;
    cfg
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sim_run");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for variant in SystemVariant::all() {
        for vms in [3u32, 12] {
            group.bench_with_input(
                BenchmarkId::new(variant.label(), vms),
                &(variant, vms),
                |b, &(variant, vms)| b.iter(|| sim::run(quick(variant, vms))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
