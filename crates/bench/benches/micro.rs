//! Component microbenchmarks (A5): parsing, signing, hashing, routing
//! structures, inheritance resolution, template selection, dataflow
//! planning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oprc_core::dataflow::{DataflowSpec, StepSpec};
use oprc_core::hierarchy::ClassHierarchy;
use oprc_core::nfr::NfrSpec;
use oprc_core::parse;
use oprc_core::template::TemplateCatalog;
use oprc_simcore::SimTime;
use oprc_store::presign::{self, Method};
use oprc_store::{sha, Dht, DhtConfig, DhtNodeId, HashRing};
use oprc_value::{json, vjson, yaml};

const LISTING1: &str = r#"
classes:
  - name: Image
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs:
      - name: image
        type: file
    functions:
      - name: resize
        image: img/resize
      - name: changeFormat
        image: img/change-format
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
"#;

fn bench_parsing(c: &mut Criterion) {
    let doc = vjson!({
        "id": "obj-123",
        "payload": "abcdefghijklmnopqrstuvwxyz0123456789",
        "nested": {"a": [1, 2, 3, 4, 5], "b": {"c": true}},
        "metrics": [1.5, 2.5, 3.75],
    });
    let compact = json::to_string(&doc);
    c.bench_function("json_parse_1kb_doc", |b| {
        b.iter(|| json::parse(black_box(&compact)).unwrap());
    });
    c.bench_function("json_emit_compact", |b| {
        b.iter(|| json::to_string(black_box(&doc)));
    });
    c.bench_function("yaml_parse_listing1", |b| {
        b.iter(|| yaml::parse(black_box(LISTING1)).unwrap());
    });
    c.bench_function("package_parse_listing1", |b| {
        b.iter(|| parse::package_from_yaml(black_box(LISTING1)).unwrap());
    });
}

fn bench_crypto(c: &mut Criterion) {
    let payload = vec![0xabu8; 4096];
    c.bench_function("sha256_4kib", |b| {
        b.iter(|| sha::sha256(black_box(&payload)));
    });
    let url = presign::presign(
        b"secret",
        Method::Get,
        "bucket",
        "obj-1/image",
        SimTime::from_secs(900),
    );
    c.bench_function("presign_url", |b| {
        b.iter(|| {
            presign::presign(
                black_box(b"secret"),
                Method::Get,
                "bucket",
                "obj-1/image",
                SimTime::from_secs(900),
            )
        });
    });
    c.bench_function("verify_url", |b| {
        b.iter(|| presign::verify(b"secret", black_box(&url.url), SimTime::ZERO).unwrap());
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut ring = HashRing::new(64);
    for m in 0..12 {
        ring.add(m);
    }
    c.bench_function("hashring_owner", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ring.owner(black_box(&format!("obj-{i}")))
        });
    });
    let mut dht = Dht::new(DhtConfig::default());
    for m in 0..12 {
        dht.join(DhtNodeId(m));
    }
    for i in 0..1000 {
        dht.put(&format!("obj-{i}"), vjson!({"n": i})).unwrap();
    }
    c.bench_function("dht_get_hot", |b| {
        b.iter(|| dht.get(black_box("obj-500")));
    });
    c.bench_function("dht_put_replicated", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            dht.put(&format!("obj-{}", i % 1000), vjson!({"n": (i as i64)}))
                .unwrap();
        });
    });
}

fn bench_core(c: &mut Criterion) {
    let pkg = parse::package_from_yaml(LISTING1).unwrap();
    c.bench_function("hierarchy_resolve_listing1", |b| {
        b.iter(|| ClassHierarchy::resolve(black_box(&pkg.classes)).unwrap());
    });
    let catalog = TemplateCatalog::standard();
    let nfr = NfrSpec::from_value(&vjson!({
        "qos": {"throughput": 5000, "latency": 5},
        "constraint": {"persistent": true},
    }))
    .unwrap();
    c.bench_function("template_select", |b| {
        b.iter(|| catalog.select(black_box(&nfr)).unwrap());
    });
    let df = DataflowSpec::new("wide")
        .step(StepSpec::new("a", "f").from_input())
        .step(StepSpec::new("b", "f").from_step("a"))
        .step(StepSpec::new("c", "f").from_step("a"))
        .step(StepSpec::new("d", "f").from_step("a"))
        .step(
            StepSpec::new("join", "g")
                .from_step("b")
                .from_step("c")
                .from_step("d"),
        );
    c.bench_function("dataflow_stage_planning", |b| {
        b.iter(|| black_box(&df).stages());
    });
    let from = vjson!({"a": 1, "b": {"c": [1, 2, 3], "d": "x"}});
    let to = vjson!({"a": 2, "b": {"c": [1, 2, 3], "d": "y"}, "e": true});
    c.bench_function("merge_diff_and_apply", |b| {
        b.iter(|| {
            let patch = oprc_value::merge::diff(black_box(&from), black_box(&to)).unwrap();
            let mut x = from.clone();
            oprc_value::merge::deep_merge(&mut x, patch);
            x
        });
    });
}

criterion_group!(
    benches,
    bench_parsing,
    bench_crypto,
    bench_routing,
    bench_core
);
criterion_main!(benches);
