//! A1 companion bench: cost of the write-behind path itself at
//! different batch sizes (offer + flush of 10k updates over 1k hot
//! keys). The throughput-level effect of batching is reported by the
//! `fig3` binary; this bench shows the mechanism is cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oprc_simcore::{SimDuration, SimTime};
use oprc_store::{PersistentDb, PersistentDbConfig, WriteBehindBuffer, WriteBehindConfig};
use oprc_value::vjson;

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_write_behind_path");
    for batch in [1usize, 10, 100, 500] {
        group.bench_with_input(
            BenchmarkId::new("offer_flush_10k", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut buf = WriteBehindBuffer::new(WriteBehindConfig {
                        max_batch: batch,
                        max_delay: SimDuration::from_millis(50),
                    });
                    let mut db = PersistentDb::new(PersistentDbConfig::default());
                    for i in 0..10_000u64 {
                        let key = format!("obj-{}", i % 1_000);
                        buf.offer(SimTime::ZERO, &key, vjson!({"n": (i as i64)}));
                        while let Some(b) = buf.take_batch(SimTime::ZERO) {
                            db.put_batch(SimTime::ZERO, b.records);
                        }
                    }
                    let tail = buf.drain(usize::MAX);
                    db.put_batch(SimTime::ZERO, tail.records);
                    db.stats()
                });
            },
        );
    }
    group.finish();

    c.bench_function("db_direct_put_10k", |b| {
        b.iter(|| {
            let mut db = PersistentDb::new(PersistentDbConfig::default());
            for i in 0..10_000u64 {
                db.put(
                    SimTime::ZERO,
                    &format!("obj-{}", i % 1_000),
                    vjson!({"n": (i as i64)}),
                );
            }
            db.stats()
        });
    });
}

criterion_group!(benches, bench_write_path);
criterion_main!(benches);
