//! End-to-end embedded-platform benches, including the dataflow
//! parallelism ablation (A3): a four-way fan-out dataflow against the
//! equivalent manual function chain, with functions that cost real time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::vjson;

/// Per-step simulated work for the A3 comparison.
const STEP_COST: Duration = Duration::from_millis(2);

fn counter_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/counter", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({ "count": n })))
    });
    p.deploy_yaml(
        "classes:\n  - name: Counter\n    keySpecs: [count]\n    functions:\n      - name: incr\n        image: img/counter\n",
    )
    .expect("deploys");
    p
}

fn fanout_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/slow", |task| {
        std::thread::sleep(STEP_COST);
        Ok(TaskResult::output(
            task.args.first().cloned().unwrap_or_default(),
        ))
    });
    p.deploy_yaml(
        r#"
classes:
  - name: Fan
    functions:
      - name: work
        image: img/slow
    dataflows:
      - name: fanout
        output: d
        steps:
          - id: a
            function: work
            inputs: [input]
          - id: b
            function: work
            inputs: [input]
          - id: c
            function: work
            inputs: [input]
          - id: d
            function: work
            inputs: ["step:a"]
"#,
    )
    .expect("deploys");
    p
}

fn bench_invoke(c: &mut Criterion) {
    let p = counter_platform();
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    c.bench_function("embedded_invoke_counter", |b| {
        b.iter(|| p.invoke(id, "incr", vec![]).unwrap());
    });
    c.bench_function("embedded_create_object", |b| {
        b.iter(|| p.create_object("Counter", vjson!({"count": 0})).unwrap());
    });
}

fn bench_dataflow_vs_manual(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_dataflow_vs_manual_chain");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    // Dataflow: stage {a, b, c} runs in parallel, then d.
    // Critical path = 2 × STEP_COST.
    group.bench_function("dataflow_fanout", |b| {
        let p = fanout_platform();
        let id = p.create_object("Fan", vjson!({})).unwrap();
        b.iter(|| p.invoke(id, "fanout", vec![vjson!(1)]).unwrap());
    });
    // Manual chaining (what FaaS forces, §I): 4 sequential invocations.
    // Wall = 4 × STEP_COST.
    group.bench_function("manual_chain", |b| {
        let p = fanout_platform();
        let id = p.create_object("Fan", vjson!({})).unwrap();
        b.iter(|| {
            let a = p.invoke(id, "work", vec![vjson!(1)]).unwrap();
            let _b = p.invoke(id, "work", vec![vjson!(1)]).unwrap();
            let _c = p.invoke(id, "work", vec![vjson!(1)]).unwrap();
            p.invoke(id, "work", vec![a.output]).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_invoke, bench_dataflow_vs_manual);
criterion_main!(benches);
