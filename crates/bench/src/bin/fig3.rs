//! Regenerates the paper's Figure 3 plus the ablation tables.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --bin fig3 --release [-- --quick]
//! ```
//!
//! Prints, in order:
//!
//! 1. **Figure 3** — throughput vs worker VMs for the four systems;
//! 2. a latency companion table (p50/p99 per system at each scale);
//! 3. **A1** — write-behind batch-size sweep (why batching wins);
//! 4. **A2** — template-selection ablation (selected template vs the
//!    one-size-fits-all default for a high-throughput class);
//! 5. **A4** — locality-routing ablation on the embedded platform.
//!
//! All runs are deterministic (fixed seeds).

use oprc_bench::{format_table, sim_config_for_template};
use oprc_core::nfr::NfrSpec;
use oprc_core::template::TemplateCatalog;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::sim::{self, ExperimentConfig, SystemVariant};
use oprc_simcore::SimDuration;
use oprc_value::vjson;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (5, 8) } else { (10, 20) };
    let vm_counts = [3u32, 6, 9, 12];

    println!("== Oparaca reproduction: paper Figure 3 ==");
    println!(
        "(closed-loop JSON-randomization workload; {warmup}s warmup, {measure}s window; seed 42)\n"
    );

    let mut results = Vec::new();
    for &vms in &vm_counts {
        for variant in SystemVariant::all() {
            let mut cfg = ExperimentConfig::fig3(variant, vms);
            cfg.warmup = SimDuration::from_secs(warmup);
            cfg.measure = SimDuration::from_secs(measure);
            let r = sim::run(cfg);
            eprintln!(
                "  ran {:<24} vms={:<2} throughput={:>8.0}/s p99={:>7.1}ms",
                r.variant.label(),
                r.vms,
                r.throughput,
                r.p99_ms
            );
            results.push(r);
        }
    }

    // Machine-readable results for downstream tooling/regression
    // tracking.
    let json_results: Vec<oprc_value::Value> = results
        .iter()
        .map(|r| {
            vjson!({
                "system": (r.variant.label()),
                "vms": (r.vms),
                "throughput": (r.throughput),
                "p50_ms": (r.p50_ms),
                "p99_ms": (r.p99_ms),
                "replicas": (r.replicas),
            })
        })
        .collect();
    let doc = vjson!({
        "experiment": "fig3",
        "seed": 42,
        "quick": quick,
        "results": (oprc_value::Value::from(json_results)),
    });
    match std::fs::write("BENCH_fig3.json", oprc_value::json::to_string_pretty(&doc)) {
        Ok(()) => eprintln!("  wrote BENCH_fig3.json"),
        Err(e) => eprintln!("  could not write BENCH_fig3.json: {e}"),
    }

    let throughput_of = |variant: SystemVariant, vms: u32| -> f64 {
        results
            .iter()
            .find(|r| r.variant == variant && r.vms == vms)
            .map_or(f64::NAN, |r| r.throughput)
    };

    // --- Figure 3 table ---
    let header: Vec<String> = std::iter::once("vms".to_string())
        .chain(SystemVariant::all().iter().map(|v| v.label().to_string()))
        .collect();
    let rows: Vec<Vec<String>> = vm_counts
        .iter()
        .map(|&vms| {
            std::iter::once(vms.to_string())
                .chain(
                    SystemVariant::all()
                        .iter()
                        .map(|&v| format!("{:.0}", throughput_of(v, vms))),
                )
                .collect()
        })
        .collect();
    println!("\nFigure 3 — throughput (req/s) vs worker VMs");
    println!("{}", format_table(&header, &rows));

    // --- Latency companion ---
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.variant.label().to_string(),
            r.vms.to_string(),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p99_ms),
            r.replicas.to_string(),
            r.db_single_writes.to_string(),
            r.db_batch_writes.to_string(),
            r.consolidated.to_string(),
        ]);
    }
    println!("Companion table — latency and storage behaviour");
    println!(
        "{}",
        format_table(
            &[
                "system".into(),
                "vms".into(),
                "p50 ms".into(),
                "p99 ms".into(),
                "replicas".into(),
                "db singles".into(),
                "db batches".into(),
                "consolidated".into(),
            ],
            &rows
        )
    );

    // --- Shape checks (paper's qualitative findings) ---
    println!("Shape checks vs the paper:");
    let kn6 = throughput_of(SystemVariant::Knative, 6);
    let kn12 = throughput_of(SystemVariant::Knative, 12);
    check(
        "knative plateaus after 6 VMs (§V)",
        kn12 < kn6 * 1.15,
        format!("6→12 VMs: {kn6:.0} → {kn12:.0} req/s"),
    );
    let op12 = throughput_of(SystemVariant::Oprc, 12);
    check(
        "oprc significantly above knative at 12 VMs",
        op12 > kn12 * 1.5,
        format!("knative {kn12:.0} vs oprc {op12:.0} req/s"),
    );
    let np3 = throughput_of(SystemVariant::OprcBypassNonPersist, 3);
    let np12 = throughput_of(SystemVariant::OprcBypassNonPersist, 12);
    check(
        "nonpersist scales ~linearly (DB-unconstrained ceiling)",
        np12 / np3 > 3.3,
        format!("3→12 VMs: {:.2}x", np12 / np3),
    );
    let by12 = throughput_of(SystemVariant::OprcBypass, 12);
    check(
        "oprc variants sublinear but ordered: oprc ≤ bypass ≤ nonpersist",
        op12 <= by12 * 1.05 && by12 <= np12 * 1.02,
        format!("oprc {op12:.0}, bypass {by12:.0}, nonpersist {np12:.0}"),
    );

    // --- A1: batch-size sweep ---
    println!("\nA1 — write-behind batch size (oprc-bypass, 9 VMs)");
    let mut rows = Vec::new();
    for batch in [1usize, 10, 50, 100, 500] {
        let mut cfg = ExperimentConfig::fig3(SystemVariant::OprcBypass, 9);
        cfg.warmup = SimDuration::from_secs(warmup);
        cfg.measure = SimDuration::from_secs(measure);
        cfg.write_behind.max_batch = batch;
        let r = sim::run(cfg);
        rows.push(vec![
            batch.to_string(),
            format!("{:.0}", r.throughput),
            format!("{:.1}", r.p99_ms),
            r.db_batch_writes.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "batch".into(),
                "req/s".into(),
                "p99 ms".into(),
                "db batches".into()
            ],
            &rows
        )
    );

    // --- A2: template selection vs one-size-fits-all ---
    println!("A2 — requirement-driven template vs default template (throughput-1000 class, 9 VMs)");
    let catalog = TemplateCatalog::standard();
    let hot_nfr = NfrSpec::from_value(&vjson!({"qos": {"throughput": 5000}})).unwrap();
    let selected = catalog.select(&hot_nfr).expect("standard catalog matches");
    let default_cfg = catalog
        .templates()
        .iter()
        .find(|t| t.name == "default")
        .expect("default template exists");
    let mut rows = Vec::new();
    for (label, template) in [("selected", selected), ("default", default_cfg)] {
        let mut cfg = sim_config_for_template(SystemVariant::Oprc, 9, &template.config);
        cfg.warmup = SimDuration::from_secs(warmup);
        cfg.measure = SimDuration::from_secs(measure);
        let r = sim::run(cfg);
        rows.push(vec![
            label.to_string(),
            template.name.clone(),
            r.variant.label().to_string(),
            format!("{:.0}", r.throughput),
            format!("{:.1}", r.p99_ms),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "catalog".into(),
                "template".into(),
                "maps to".into(),
                "req/s".into(),
                "p99 ms".into()
            ],
            &rows
        )
    );

    // --- A4: locality routing ---
    println!("A4a — data-locality routing in simulation (oprc-bypass-nonpersist, 9 VMs)");
    let mut rows = Vec::new();
    for locality in [true, false] {
        let mut cfg = ExperimentConfig::fig3(SystemVariant::OprcBypassNonPersist, 9);
        cfg.warmup = SimDuration::from_secs(warmup);
        cfg.measure = SimDuration::from_secs(measure);
        cfg.locality_routing = locality;
        let r = sim::run(cfg);
        rows.push(vec![
            if locality {
                "locality"
            } else {
                "random replica"
            }
            .to_string(),
            format!("{:.0}", r.throughput),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p99_ms),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "routing".into(),
                "req/s".into(),
                "p50 ms".into(),
                "p99 ms".into()
            ],
            &rows
        )
    );

    println!("A4b — data-locality routing (embedded plane, 2000 invocations)");
    let mut rows = Vec::new();
    for locality in [true, false] {
        let (local, remote) = locality_run(locality);
        rows.push(vec![
            if locality { "locality" } else { "round-robin" }.to_string(),
            local.to_string(),
            remote.to_string(),
            format!(
                "{:.0}%",
                100.0 * local as f64 / (local + remote).max(1) as f64
            ),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "routing".into(),
                "state-local".into(),
                "state-remote".into(),
                "local %".into()
            ],
            &rows
        )
    );
    println!("(a state-remote execution pays one extra network hop per invocation — §II-A)");
}

fn check(what: &str, ok: bool, detail: String) {
    println!("  [{}] {what} — {detail}", if ok { "ok" } else { "MISS" });
}

/// Runs 2000 invocations on the embedded platform with locality routing
/// on or off, returning `(local, remote)` route counts.
fn locality_run(locality: bool) -> (u64, u64) {
    use oprc_core::invocation::TaskResult;
    use oprc_core::template::{ClassRuntimeTemplate, RuntimeConfig};

    let mut catalog = TemplateCatalog::new();
    catalog.add(ClassRuntimeTemplate::new(
        "bench",
        0,
        RuntimeConfig {
            locality_routing: locality,
            min_replicas: 4,
            ..RuntimeConfig::default()
        },
    ));
    let mut p = EmbeddedPlatform::with_catalog(catalog);
    p.register_function("img/touch", |t| {
        Ok(TaskResult::output(t.state_in["n"].as_i64().unwrap_or(0)))
    });
    p.deploy_yaml(
        "classes:\n  - name: K\n    keySpecs: [n]\n    functions:\n      - name: touch\n        image: img/touch\n",
    )
    .expect("deploys");
    let ids: Vec<_> = (0..100)
        .map(|_| p.create_object("K", vjson!({"n": 1})).expect("creates"))
        .collect();
    for i in 0..2000usize {
        let id = ids[i % ids.len()];
        p.invoke(id, "touch", vec![]).expect("invokes");
    }
    p.routing_stats("K")
}
