//! Deterministic micro-benchmark for the embedded invocation hot path.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --release --bin invoke_hotpath [-- --quick] [--check]
//! ```
//!
//! Sweeps the invoke → route → build-task → execute → commit path over
//! a fixed set of seeded scenarios and emits `BENCH_invoke.json` with
//! ns/op and allocation counts per case:
//!
//! - `cold_invoke` — first read after an in-memory-tier wipe (DHT miss,
//!   DB fallback, re-warm);
//! - `warm_invoke` — repeated invocation of a hot object (the headline
//!   number);
//! - `retry_single` — the same class/state as the storm, chaos armed but
//!   no faults scripted (isolation control for `retry_storm`);
//! - `retry_storm` — five attempts per invocation (availability 0.999
//!   tier) driven by scripted `engine.execute` faults on a virtual
//!   clock, so re-shipping the task across attempts is on the measured
//!   path;
//! - `dataflow_8stage` — an eight-stage dataflow (two parallel steps per
//!   stage) fanning intermediate values across scoped worker threads;
//! - `dataflow_fused_chain` — a three-step same-object chain the flow
//!   compiler fuses into one unit (one shard-lock hold, one commit);
//! - `warm_batch_{1,4,16,64}` — the `invoke_batch` sweep on the hot
//!   object: one shard group per batch, a single lock hold and merged
//!   commit amortized over the batch. Metrics are normalized per
//!   *item* so the cases compare directly with `warm_invoke`.
//!
//! All workloads are fixed-seed and the retry schedule runs on the
//! virtual chaos clock, so the *work done* per case is deterministic;
//! wall-clock ns/op varies with the machine, allocation counts do not.
//!
//! With `--check` the run additionally gates (exit non-zero on
//! violation, like `chaos_smoke`):
//!
//! - the JSON shape is pinned (all cases present with all keys);
//! - warm-invoke ns/op is at least 2× faster than the checked-in
//!   pre-optimisation baseline below;
//! - the retry storm is no longer O(attempts) in state-snapshot deep
//!   clones: allocations per extra attempt (vs the single-attempt
//!   control) must stay within `RETRY_EXTRA_ATTEMPT_ALLOC_BUDGET`;
//! - the batch path amortizes: warm batch=64 per-item time must be at
//!   least `BATCH_SPEEDUP_FLOOR`× better than batch=1, and batch=64
//!   per-item allocations must stay within `BATCH64_ALLOC_BUDGET`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use oprc_chaos::{FaultKind, FaultPlan, InjectionSite};
use oprc_core::dataflow::{DataflowSpec, StepSpec};
use oprc_core::invocation::TaskResult;
use oprc_core::object::ObjectId;
use oprc_core::{ClassDef, FunctionDef, OPackage};
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::{json, vjson, Value};

/// Counts every heap allocation so clone-heaviness is measurable.
struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are monotonic
// and never influence allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const SEED: u64 = 42;
/// Attempts the availability-0.999 tier arms (see `retry_attempts`).
const STORM_ATTEMPTS: u64 = 5;

/// Pre-optimisation reference numbers, measured on this repository
/// immediately *before* the copy-on-write snapshot + dispatch-plan-cache
/// change (same machine class, release build, default op counts,
/// seed 42). `--check` gates the warm path against `warm_ns_per_op`.
const BASELINE_WARM_NS_PER_OP: u64 = 206_140;
const BASELINE_WARM_ALLOCS_PER_OP: u64 = 3_557;
const BASELINE_RETRY_STORM_BYTES_PER_OP: u64 = 552_791;
const BASELINE_RETRY_STORM_ALLOCS_PER_OP: u64 = 5_935;

/// `--check`: each retry attempt beyond the first may allocate at most
/// this much on top of the single-attempt control. The pre-optimisation
/// code deep-cloned the whole task (state snapshot included) per
/// attempt — 593 allocations each on the benchmark state — while
/// refcount-bump re-shipping costs a few dozen. Allocation counts are
/// exact for a fixed seed, so this gate is machine-independent.
const RETRY_EXTRA_ATTEMPT_ALLOC_BUDGET: u64 = 160;

/// `--check`: warm batch=64 per-item time must beat batch=1 by at
/// least this factor — the single lock hold, merged commit, and
/// arena-amortized state clone have to actually amortize.
const BATCH_SPEEDUP_FLOOR: u64 = 3;

/// `--check`: per-item allocations at batch=64. The sequential warm
/// path costs ~600 allocs/op (dominated by the copy-on-write state
/// clone); the batch path pays that once per group and runs items out
/// of the scratch arena, so per-item counts must stay in the tens.
const BATCH64_ALLOC_BUDGET: u64 = 32;

#[derive(Debug, Clone)]
struct CaseResult {
    case: &'static str,
    ops: u64,
    ns_per_op: u64,
    allocs_per_op: u64,
    bytes_per_op: u64,
}

/// Runs `op` `ops` times and reports wall time and allocator deltas.
fn measure(case: &'static str, ops: u64, mut op: impl FnMut()) -> CaseResult {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..ops {
        op();
    }
    let elapsed = t0.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let bytes = BYTES.load(Ordering::Relaxed) - b0;
    CaseResult {
        case,
        ops,
        ns_per_op: (elapsed.as_nanos() as u64) / ops.max(1),
        allocs_per_op: allocs / ops.max(1),
        bytes_per_op: bytes / ops.max(1),
    }
}

/// A realistic hot-object state: 64 nested fields plus the counter, so
/// state deep-clones dominate any clone-happy implementation.
fn big_state() -> Value {
    let mut v = Value::object();
    for i in 0..64 {
        v.insert(
            format!("field_{i:02}"),
            vjson!({
                "idx": i,
                "payload": "0123456789abcdef0123456789abcdef",
                "tags": ["hot", "bench"],
            }),
        );
    }
    v.insert("count", 0_i64);
    v
}

fn register_counter(p: &mut EmbeddedPlatform) {
    p.register_function("img/hot-incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
}

/// A platform with a plain (single-attempt) hot class.
fn hot_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    register_counter(&mut p);
    p.deploy_yaml(
        "
classes:
  - name: Hot
    keySpecs: [count]
    functions:
      - name: incr
        image: img/hot-incr
",
    )
    .expect("hot class deploys");
    p
}

/// A platform whose class earns the 5-attempt retry tier.
fn storm_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    register_counter(&mut p);
    p.deploy_yaml(
        "
classes:
  - name: Stormy
    qos:
      availability: 0.999
    functions:
      - name: incr
        image: img/hot-incr
",
    )
    .expect("stormy class deploys");
    p
}

/// Eight chained stages, two parallel steps each: stage k's steps both
/// consume both of stage k-1's outputs, and a final `combine` step (the
/// eighth stage) joins the last pair.
fn dataflow_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/sum1", |t| {
        let s: i64 = t.args.iter().filter_map(oprc_value::Value::as_i64).sum();
        Ok(TaskResult::output(s + 1))
    });
    let mut df = DataflowSpec::new("pipe8");
    for stage in 0..7_u32 {
        for lane in 0..2_u32 {
            let mut step = StepSpec::new(format!("s{stage}_{lane}"), "sum");
            if stage == 0 {
                step = step.from_input();
            } else {
                step = step
                    .from_step(format!("s{}_0", stage - 1))
                    .from_step(format!("s{}_1", stage - 1));
            }
            df = df.step(step);
        }
    }
    df = df
        .step(
            StepSpec::new("combine", "sum")
                .from_step("s6_0")
                .from_step("s6_1"),
        )
        .output_from("combine");
    let class = ClassDef::new("Flow8")
        .function(FunctionDef::new("sum", "img/sum1"))
        .dataflow(df);
    p.deploy_package(OPackage::new("flow8").class(class))
        .expect("flow8 deploys");
    p
}

fn run_cold(ops: u64) -> CaseResult {
    let p = hot_platform();
    let ids: Vec<ObjectId> = (0..ops)
        .map(|_| p.create_object("Hot", big_state()).expect("creates"))
        .collect();
    for &id in &ids {
        p.invoke(id, "incr", vec![]).expect("seeds state");
    }
    p.flush();
    p.simulate_memory_loss();
    let mut next = ids.into_iter();
    measure("cold_invoke", ops, move || {
        let id = next.next().expect("one object per op");
        p.invoke(id, "incr", vec![]).expect("cold invoke");
    })
}

fn run_warm(ops: u64) -> CaseResult {
    let p = hot_platform();
    let id = p.create_object("Hot", big_state()).expect("creates");
    for _ in 0..ops / 8 {
        p.invoke(id, "incr", vec![]).expect("warms up");
    }
    measure("warm_invoke", ops, move || {
        p.invoke(id, "incr", vec![]).expect("warm invoke");
    })
}

fn run_retry_single(ops: u64) -> CaseResult {
    let mut p = storm_platform();
    // Chaos armed (same code path as the storm) but nothing scripted:
    // every invocation succeeds on attempt 1.
    p.enable_chaos(FaultPlan::new(SEED));
    let id = p.create_object("Stormy", big_state()).expect("creates");
    for _ in 0..ops / 8 {
        p.invoke(id, "incr", vec![]).expect("warms up");
    }
    measure("retry_single", ops, move || {
        p.invoke(id, "incr", vec![]).expect("single-attempt invoke");
    })
}

fn run_retry_storm(ops: u64) -> CaseResult {
    let warmup = ops / 8;
    let total = warmup + ops;
    let mut p = storm_platform();
    // Script engine.execute to fail the first four attempts of every
    // invocation; the fifth succeeds. The backoffs between attempts run
    // on the virtual chaos clock, so no wall time is spent sleeping.
    let mut plan = FaultPlan::new(SEED);
    for op in 0..total {
        for attempt in 0..STORM_ATTEMPTS - 1 {
            plan = plan.script(
                InjectionSite::EngineExecute,
                op * STORM_ATTEMPTS + attempt,
                FaultKind::Error,
            );
        }
    }
    p.enable_chaos(plan);
    let id = p.create_object("Stormy", big_state()).expect("creates");
    for _ in 0..warmup {
        p.invoke(id, "incr", vec![]).expect("warms up");
    }
    measure("retry_storm", ops, move || {
        p.invoke(id, "incr", vec![])
            .expect("storm invoke succeeds on attempt 5");
    })
}

/// A three-step self-bound chain on the hot counter class; with the
/// fusion pass on (the default) the compiled plan runs it as one unit.
fn fused_chain_platform(fuse: bool) -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    register_counter(&mut p);
    p.deploy_yaml(
        "
classes:
  - name: FusedDoc
    keySpecs: [count]
    functions:
      - name: incr
        image: img/hot-incr
    dataflows:
      - name: chain
        output: c
        steps:
          - id: a
            function: incr
            inputs: [input]
          - id: b
            function: incr
            inputs: [\"step:a\"]
          - id: c
            function: incr
            inputs: [\"step:b\"]
",
    )
    .expect("fused chain deploys");
    if !fuse {
        p.set_flow_fusion(false).expect("recompiles unfused");
    }
    p
}

/// Runs the fused chain and reports, alongside the timing, the exact
/// commit and fused-unit counter deltas over the measured ops.
fn run_dataflow_fused(ops: u64) -> (CaseResult, u64, u64) {
    let p = fused_chain_platform(true);
    let id = p.create_object("FusedDoc", big_state()).expect("creates");
    for _ in 0..ops / 8 {
        p.invoke(id, "chain", vec![]).expect("warms up");
    }
    let c0 = p.metrics().commits_total();
    let f0 = p.metrics().fused_units_total();
    let r = measure("dataflow_fused_chain", ops, || {
        p.invoke(id, "chain", vec![]).expect("fused chain runs");
    });
    (
        r,
        p.metrics().commits_total() - c0,
        p.metrics().fused_units_total() - f0,
    )
}

/// Commit count for the same chain with fusion disabled (the
/// commit-reduction gate's control).
fn unfused_chain_commits(ops: u64) -> u64 {
    let p = fused_chain_platform(false);
    let id = p.create_object("FusedDoc", big_state()).expect("creates");
    let c0 = p.metrics().commits_total();
    for _ in 0..ops {
        p.invoke(id, "chain", vec![]).expect("unfused chain runs");
    }
    p.metrics().commits_total() - c0
}

/// The `invoke_batch` sweep case: `total_items` invocations on one hot
/// object submitted in batches of `size`. Reported metrics are
/// normalized per *item* (one item ≡ one `warm_invoke` op), so the
/// sweep reads as "per-op cost at this batch size".
fn run_warm_batch(total_items: u64, size: u64) -> CaseResult {
    use oprc_platform::embedded::BatchItem;
    let case = match size {
        1 => "warm_batch_1",
        4 => "warm_batch_4",
        16 => "warm_batch_16",
        64 => "warm_batch_64",
        _ => unreachable!("sweep sizes are pinned"),
    };
    let p = hot_platform();
    let id = p.create_object("Hot", big_state()).expect("creates");
    let batch =
        |n: u64| -> Vec<BatchItem> { (0..n).map(|_| BatchItem::new(id, "incr", vec![])).collect() };
    for _ in 0..8 {
        for r in p.invoke_batch(batch(size)) {
            r.expect("warms up");
        }
    }
    let batches = (total_items / size).max(1);
    let raw = measure(case, batches, || {
        for r in p.invoke_batch(batch(size)) {
            r.expect("batch item succeeds");
        }
    });
    CaseResult {
        case,
        ops: batches * size,
        ns_per_op: raw.ns_per_op / size,
        allocs_per_op: raw.allocs_per_op / size,
        bytes_per_op: raw.bytes_per_op / size,
    }
}

fn run_dataflow(ops: u64) -> CaseResult {
    let p = dataflow_platform();
    let id = p.create_object("Flow8", vjson!({})).expect("creates");
    for _ in 0..ops / 8 {
        p.invoke(id, "pipe8", vec![vjson!(1)]).expect("warms up");
    }
    measure("dataflow_8stage", ops, move || {
        let out = p
            .invoke(id, "pipe8", vec![vjson!(1)])
            .expect("dataflow runs");
        assert!(out.output.as_i64().is_some());
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let (cold_ops, warm_ops, retry_ops, df_ops) = if quick {
        (64, 512, 64, 32)
    } else {
        (256, 2048, 256, 128)
    };

    let (fused_case, fused_commits, fused_units) = run_dataflow_fused(df_ops);
    let unfused_commits = unfused_chain_commits(df_ops);
    let mut results = vec![
        run_cold(cold_ops),
        run_warm(warm_ops),
        run_retry_single(retry_ops),
        run_retry_storm(retry_ops),
        run_dataflow(df_ops),
        fused_case,
    ];
    for size in [1, 4, 16, 64] {
        results.push(run_warm_batch(warm_ops, size));
    }

    for r in &results {
        eprintln!(
            "  {:<16} ops={:<5} ns/op={:>9} allocs/op={:>6} bytes/op={:>8}",
            r.case, r.ops, r.ns_per_op, r.allocs_per_op, r.bytes_per_op
        );
    }

    let by_case = |case: &str| {
        results
            .iter()
            .find(|r| r.case == case)
            .expect("all cases ran")
    };
    let warm = by_case("warm_invoke");
    let storm = by_case("retry_storm");
    let single = by_case("retry_single");
    let batch1 = by_case("warm_batch_1");
    let batch64 = by_case("warm_batch_64");
    let warm_speedup = if warm.ns_per_op > 0 {
        BASELINE_WARM_NS_PER_OP as f64 / warm.ns_per_op as f64
    } else {
        f64::INFINITY
    };
    let batch_speedup = if batch64.ns_per_op > 0 {
        batch1.ns_per_op as f64 / batch64.ns_per_op as f64
    } else {
        f64::INFINITY
    };

    let json_results: Vec<Value> = results
        .iter()
        .map(|r| {
            vjson!({
                "case": (r.case),
                "ops": (r.ops),
                "ns_per_op": (r.ns_per_op),
                "allocs_per_op": (r.allocs_per_op),
                "bytes_per_op": (r.bytes_per_op),
            })
        })
        .collect();
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let gate_mode = if cpus >= 4 { "full" } else { "no_collapse" };
    let doc = vjson!({
        "experiment": "invoke_hotpath",
        "seed": SEED,
        "quick": quick,
        "cpus": (cpus as u64),
        "gate_mode": gate_mode,
        "baseline": {
            "warm_ns_per_op": BASELINE_WARM_NS_PER_OP,
            "warm_allocs_per_op": BASELINE_WARM_ALLOCS_PER_OP,
            "retry_storm_bytes_per_op": BASELINE_RETRY_STORM_BYTES_PER_OP,
            "retry_storm_allocs_per_op": BASELINE_RETRY_STORM_ALLOCS_PER_OP,
        },
        "warm_speedup_vs_baseline": warm_speedup,
        "batch_speedup_64v1": batch_speedup,
        "results": (Value::from(json_results)),
    });
    match std::fs::write("BENCH_invoke.json", json::to_string_pretty(&doc)) {
        Ok(()) => eprintln!("  wrote BENCH_invoke.json"),
        Err(e) => eprintln!("  could not write BENCH_invoke.json: {e}"),
    }

    if !check {
        return;
    }
    let mut failures = Vec::new();
    // Shape pin: every case present with every key (the write above used
    // exactly these structs, so re-parse the emitted file to pin what
    // downstream tooling will actually read).
    let emitted = std::fs::read_to_string("BENCH_invoke.json")
        .ok()
        .and_then(|s| json::parse(&s).ok());
    match emitted {
        None => failures.push("BENCH_invoke.json missing or unparsable".to_string()),
        Some(doc) => {
            for key in [
                "experiment",
                "seed",
                "quick",
                "cpus",
                "gate_mode",
                "baseline",
                "results",
            ] {
                if doc.get(key).is_none() {
                    failures.push(format!("BENCH_invoke.json lacks '{key}'"));
                }
            }
            let cases: Vec<&str> = doc["results"]
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|r| r["case"].as_str())
                .collect();
            for want in [
                "cold_invoke",
                "warm_invoke",
                "retry_single",
                "retry_storm",
                "dataflow_8stage",
                "dataflow_fused_chain",
                "warm_batch_1",
                "warm_batch_4",
                "warm_batch_16",
                "warm_batch_64",
            ] {
                if !cases.contains(&want) {
                    failures.push(format!("case '{want}' missing from results"));
                }
            }
            for r in doc["results"].as_array().unwrap_or(&[]) {
                for key in ["case", "ops", "ns_per_op", "allocs_per_op", "bytes_per_op"] {
                    if r.get(key).is_none() {
                        failures.push(format!("result lacks '{key}'"));
                    }
                }
            }
        }
    }
    // Perf gate: warm invoke at least 2x faster than the pre-optimisation
    // baseline.
    if warm.ns_per_op * 2 > BASELINE_WARM_NS_PER_OP {
        failures.push(format!(
            "warm invoke {} ns/op is not 2x faster than the {} ns/op baseline",
            warm.ns_per_op, BASELINE_WARM_NS_PER_OP
        ));
    }
    // Allocation gate: the retry storm must not deep-clone the state
    // snapshot per attempt. Compare against the single-attempt control
    // on the same class and state; the only difference between the two
    // cases is the four extra attempts.
    let extra_allocs = storm
        .allocs_per_op
        .saturating_sub(single.allocs_per_op)
        .div_ceil(STORM_ATTEMPTS - 1);
    if extra_allocs > RETRY_EXTRA_ATTEMPT_ALLOC_BUDGET {
        failures.push(format!(
            "retry storm costs {extra_allocs} allocations per extra attempt \
             (budget {RETRY_EXTRA_ATTEMPT_ALLOC_BUDGET}): \
             state snapshots are being deep-cloned per attempt"
        ));
    }
    // Commit-reduction gate: the fused 3-step chain commits exactly once
    // per invocation (counter deltas are exact, machine-independent),
    // while the fusion-disabled control pays one commit per step.
    if fused_commits != df_ops || fused_units != df_ops {
        failures.push(format!(
            "fused chain: expected {df_ops} commits and {df_ops} fused units \
             over {df_ops} ops, measured {fused_commits} and {fused_units}"
        ));
    }
    if unfused_commits != 3 * df_ops {
        failures.push(format!(
            "unfused chain control: expected {} commits over {df_ops} ops, \
             measured {unfused_commits}",
            3 * df_ops
        ));
    }
    // Batch amortization gate: batch=64 must spread the lock hold,
    // state clone, and commit widely enough to beat batch=1 per item.
    if batch64.ns_per_op * BATCH_SPEEDUP_FLOOR > batch1.ns_per_op {
        failures.push(format!(
            "warm batch=64 at {} ns/item is not {BATCH_SPEEDUP_FLOOR}x \
             faster than batch=1 at {} ns/item",
            batch64.ns_per_op, batch1.ns_per_op
        ));
    }
    // Batch allocation gate: items run out of the per-batch scratch
    // arena, so per-item counts stay in the tens, not the hundreds.
    if batch64.allocs_per_op > BATCH64_ALLOC_BUDGET {
        failures.push(format!(
            "warm batch=64 costs {} allocs/item (budget {BATCH64_ALLOC_BUDGET}): \
             the batch path is allocating per item instead of per group",
            batch64.allocs_per_op
        ));
    }

    if failures.is_empty() {
        println!(
            "invoke_hotpath: ok — warm {} ns/op ({warm_speedup:.2}x vs baseline), \
             {} allocs per extra retry attempt, \
             batch64 {} ns/item ({batch_speedup:.2}x vs batch=1, {} allocs/item)",
            warm.ns_per_op,
            storm
                .allocs_per_op
                .saturating_sub(single.allocs_per_op)
                .div_ceil(STORM_ATTEMPTS - 1),
            batch64.ns_per_op,
            batch64.allocs_per_op
        );
    } else {
        for f in &failures {
            eprintln!("invoke_hotpath: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
