//! Seeded scenario soak harness over the workload scenario suite.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --release --bin scenario_soak [-- --quick] [--check] [--soak N]
//! ```
//!
//! Runs every builtin scenario (Zipf hot keys, flash crowd + chaos,
//! diurnal swell, multi-tenant flood with and without admission
//! control) on a virtual-clock platform, asserts each scenario's
//! invariants (linearizable per-object counters, exactly-once commits,
//! fairness floor), and emits `BENCH_scenarios.json` with per-scenario
//! p50/p99/throughput/fairness plus the cross-scenario comparisons the
//! `--check` gate enforces:
//!
//! - every scenario's invariants held;
//! - Jain fairness with admission control on (`multi_tenant_fair`)
//!   is at least [`FAIRNESS_FLOOR`], and exceeds the same mix with
//!   admission off (`tenant_flood`) by at least [`FAIRNESS_MARGIN`] —
//!   the token buckets demonstrably do something;
//! - the Zipf hot-key mix concentrates at least [`SKEW_MARGIN`] more
//!   of all shard-lock traffic onto its hottest shard than the uniform
//!   baseline — popularity skew visibly stresses the shard layout;
//! - the emitted JSON shape is pinned (re-parsed from disk).
//!
//! `--soak N` additionally re-runs each scenario under `N` derived
//! seeds. A failing seed is *minimized* (duration repeatedly quartered
//! while the failure reproduces) and written into `tests/seeds/` as a
//! regression case the `scenario_seeds` tier-1 test replays forever
//! after. All runs are virtual-time and single-threaded, so results
//! are byte-identical across hosts.

use oprc_value::{json, vjson, Value};
use oprc_workloads::scenario::{builtin_scenarios, run_scenario, ScenarioReport, ScenarioSpec};

/// `--check`: minimum Jain fairness for the admission-on flood mix.
const FAIRNESS_FLOOR: f64 = 0.8;
/// `--check`: admission-on fairness must beat admission-off by this.
const FAIRNESS_MARGIN: f64 = 0.1;
/// `--check`: zipf hot-shard share must beat uniform's by this.
const SKEW_MARGIN: f64 = 0.1;

/// Minimizes a failing spec: keep quartering the duration while the
/// invariant violation still reproduces, returning the smallest spec
/// that fails (cheapest deterministic regression case).
fn minimize(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut best = spec.clone();
    loop {
        let smaller = best.clone().quick();
        if smaller.duration.as_secs_f64() < 1.0 {
            return best;
        }
        if run_scenario(&smaller).passed() {
            return best;
        }
        best = smaller;
    }
}

/// Writes a failing seed (spec + pinned expectations) into
/// `tests/seeds/` for the replay test to pick up.
fn record_seed(spec: &ScenarioSpec, report: &ScenarioReport) -> std::io::Result<String> {
    let doc = vjson!({
        "spec": (spec.to_value()),
        "expect": (vjson!({
            "invocations": (report.invocations),
            "completed": (report.completed),
            "telemetry_digest": (format!("{:016x}", report.telemetry_digest)),
            "invariant_failures": ((report.invariant_failures.len()) as u64),
        })),
    });
    std::fs::create_dir_all("tests/seeds")?;
    let path = format!("tests/seeds/{}_{}.json", spec.name, spec.seed);
    std::fs::write(&path, json::to_string_pretty(&doc))?;
    Ok(path)
}

fn report_row(r: &ScenarioReport) -> Value {
    r.to_value()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let soak: u64 = args
        .iter()
        .position(|a| a == "--soak")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let specs: Vec<ScenarioSpec> = builtin_scenarios()
        .into_iter()
        .map(|s| if quick { s.quick() } else { s })
        .collect();

    let mut reports = Vec::new();
    for spec in &specs {
        let r = run_scenario(spec);
        eprintln!(
            "  {:<20} seed={:<4} arrivals={:<6} ok={:<6} err={:<4} rej={:<5} \
             p50={:>7.2}ms p99={:>7.2}ms fair={:.3} hot-shard={:.3}{}",
            r.name,
            r.seed,
            r.invocations,
            r.completed,
            r.errors,
            r.rejected,
            r.p50_ms,
            r.p99_ms,
            r.fairness,
            r.shard_max_share,
            if r.passed() { "" } else { "  INVARIANT-FAIL" }
        );
        reports.push(r);
    }

    // Optional soak sweep: derived seeds per scenario; failures are
    // minimized and recorded as regression cases.
    let mut soak_runs = 0_u64;
    let mut soak_failures = Vec::new();
    for spec in &specs {
        for i in 0..soak {
            let mut derived = spec.clone();
            // Small prime stride: distinct seeds that stay well under
            // 2^53, so a recorded spec survives the JSON f64 round-trip.
            derived.seed = spec.seed + (i + 1) * 1_000_003;
            let r = run_scenario(&derived);
            soak_runs += 1;
            if !r.passed() {
                let minimal = minimize(&derived);
                let minimal_report = run_scenario(&minimal);
                match record_seed(&minimal, &minimal_report) {
                    Ok(path) => {
                        eprintln!(
                            "  SOAK FAIL {} seed={} -> minimized to {:.0}s, recorded {}",
                            derived.name,
                            derived.seed,
                            minimal.duration.as_secs_f64(),
                            path
                        );
                        soak_failures.push(format!("{} seed={}", derived.name, derived.seed));
                    }
                    Err(e) => eprintln!("  SOAK FAIL {}: could not record seed: {e}", derived.name),
                }
            }
        }
    }
    if soak > 0 {
        eprintln!(
            "  soak: {soak_runs} derived-seed runs, {} failures",
            soak_failures.len()
        );
    }

    let by = |name: &str| {
        reports
            .iter()
            .find(|r| r.name == name)
            .expect("builtin scenario ran")
    };
    let fairness_on = by("multi_tenant_fair").fairness;
    let fairness_off = by("tenant_flood").fairness;
    let zipf_share = by("zipf_hot_key").shard_max_share;
    let uniform_share = by("uniform_baseline").shard_max_share;

    let rows: Vec<Value> = reports.iter().map(report_row).collect();
    let soak_failure_rows: Vec<Value> = soak_failures
        .iter()
        .map(|s| Value::from(s.as_str()))
        .collect();
    let doc = vjson!({
        "experiment": "scenario_soak",
        "quick": quick,
        "cpus": (cpus as u64),
        "fairness_floor": FAIRNESS_FLOOR,
        "fairness_margin": FAIRNESS_MARGIN,
        "skew_margin": SKEW_MARGIN,
        "fairness_admission_on": fairness_on,
        "fairness_admission_off": fairness_off,
        "zipf_hot_shard_share": zipf_share,
        "uniform_hot_shard_share": uniform_share,
        "soak_runs": soak_runs,
        "soak_failures": (Value::from(soak_failure_rows)),
        "scenarios": (Value::from(rows)),
    });
    match std::fs::write("BENCH_scenarios.json", json::to_string_pretty(&doc)) {
        Ok(()) => eprintln!("  wrote BENCH_scenarios.json"),
        Err(e) => eprintln!("  could not write BENCH_scenarios.json: {e}"),
    }

    if !check {
        return;
    }
    let mut failures = Vec::new();
    for r in &reports {
        for f in &r.invariant_failures {
            failures.push(format!("{}: {f}", r.name));
        }
    }
    if !soak_failures.is_empty() {
        failures.push(format!(
            "{} soak seed(s) violated invariants (recorded in tests/seeds/)",
            soak_failures.len()
        ));
    }
    if fairness_on < FAIRNESS_FLOOR {
        failures.push(format!(
            "admission-on fairness {fairness_on:.3} below floor {FAIRNESS_FLOOR}"
        ));
    }
    if fairness_on - fairness_off < FAIRNESS_MARGIN {
        failures.push(format!(
            "admission-on fairness {fairness_on:.3} does not beat admission-off \
             {fairness_off:.3} by {FAIRNESS_MARGIN}"
        ));
    }
    if zipf_share - uniform_share < SKEW_MARGIN {
        failures.push(format!(
            "zipf hot-shard share {zipf_share:.3} does not exceed uniform \
             {uniform_share:.3} by {SKEW_MARGIN}"
        ));
    }
    // Shape pin: re-parse the emitted file so downstream tooling reads
    // exactly what was gated.
    let emitted = std::fs::read_to_string("BENCH_scenarios.json")
        .ok()
        .and_then(|s| json::parse(&s).ok());
    match emitted {
        None => failures.push("BENCH_scenarios.json missing or unparsable".to_string()),
        Some(doc) => {
            for key in [
                "experiment",
                "quick",
                "cpus",
                "fairness_admission_on",
                "fairness_admission_off",
                "zipf_hot_shard_share",
                "uniform_hot_shard_share",
                "scenarios",
            ] {
                if doc.get(key).is_none() {
                    failures.push(format!("BENCH_scenarios.json lacks '{key}'"));
                }
            }
            let rows = doc["scenarios"].as_array().unwrap_or(&[]).len();
            if rows != specs.len() {
                failures.push(format!(
                    "expected {} scenario rows, found {rows}",
                    specs.len()
                ));
            }
            for row in doc["scenarios"].as_array().unwrap_or(&[]) {
                for key in [
                    "name",
                    "seed",
                    "invocations",
                    "completed",
                    "errors",
                    "rejected",
                    "p50_ms",
                    "p99_ms",
                    "throughput",
                    "fairness",
                    "shard_max_share",
                    "telemetry_digest",
                    "passed",
                ] {
                    if row.get(key).is_none() {
                        failures.push(format!("scenario row lacks '{key}'"));
                    }
                }
            }
        }
    }

    if failures.is_empty() {
        println!(
            "scenario_soak: ok — {} scenarios, fairness on/off {fairness_on:.3}/{fairness_off:.3}, \
             hot-shard zipf/uniform {zipf_share:.3}/{uniform_share:.3}",
            reports.len()
        );
    } else {
        for f in &failures {
            eprintln!("scenario_soak: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
