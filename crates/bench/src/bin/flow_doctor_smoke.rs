//! Flow-doctor smoke test: deploys a package exhibiting every
//! optimizer finding and gates CI on `flow doctor` reporting all of
//! them with the pinned JSON shape.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --bin flow_doctor_smoke
//! ```
//!
//! The package's one class carries a file key and a `report` dataflow
//! with a dead readonly step (`OPRC050`), a fusable same-object chain
//! (`OPRC051`, whose presign hoisting is `OPRC053` because of the file
//! key), and a second flow with data-independent siblings (`OPRC052`).
//! Asserts, exiting non-zero on any violation so `ci.sh` can gate:
//!
//! - `flow doctor --json` reports OPRC050–OPRC053;
//! - the JSON shape is pinned (reports → diagnostics with
//!   code/message/severity/source);
//! - the text rendering is deterministic across two runs.

use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::gateway::OprcCtl;
use oprc_value::Value;

const PACKAGE: &str = "
name: doctor-smoke
classes:
  - name: Doc
    keySpecs:
      - name: blob
        type: file
      - n
    functions:
      - name: f
        image: img/f
      - name: peek
        image: img/f
        readonly: true
    dataflows:
      - name: report
        output: b
        steps:
          - id: a
            function: f
            inputs: [input]
          - id: spy
            function: peek
            inputs: [\"step:a\"]
          - id: b
            function: f
            inputs: [\"step:a\"]
      - name: fanin
        output: merge
        steps:
          - id: left
            function: f
            inputs: [input]
          - id: right
            function: f
            inputs: [input]
          - id: merge
            function: f
            inputs: [\"step:left\", \"step:right\"]
";

fn doctor_json() -> (String, Value) {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/f", |_| Ok(TaskResult::output(Value::Null)));
    let mut ctl = OprcCtl::new(p);
    ctl.execute(&format!("deploy {PACKAGE}"))
        .expect("smoke package deploys");
    let text = ctl.execute("flow doctor").expect("doctor runs").text;
    let out = ctl.execute("flow doctor --json").expect("doctor runs");
    (text, out.value.expect("doctor --json carries a value"))
}

fn main() {
    let (text, v) = doctor_json();
    let mut failures: Vec<String> = Vec::new();

    let reports = v["reports"].as_array();
    match reports {
        None => failures.push("no 'reports' array in doctor --json".into()),
        Some(reports) => {
            let diags: Vec<&Value> = reports
                .iter()
                .flat_map(|r| r["diagnostics"].as_array().into_iter().flatten())
                .collect();
            for code in ["OPRC050", "OPRC051", "OPRC052", "OPRC053"] {
                if !diags.iter().any(|d| d["code"].as_str() == Some(code)) {
                    failures.push(format!("expected finding {code} is missing"));
                }
            }
            for d in &diags {
                for key in ["code", "message", "severity", "source"] {
                    if d.get(key).is_none() {
                        failures.push(format!("diagnostic lacks '{key}': {d:?}"));
                    }
                }
            }
            if !diags.iter().any(|d| {
                d["source"]
                    .as_str()
                    .is_some_and(|s| s.ends_with("step spy"))
            }) {
                failures.push("OPRC050 does not point at the dead step".into());
            }
        }
    }
    // Deterministic rendering: an identical platform reports the
    // identical text.
    let (text2, _) = doctor_json();
    if text != text2 {
        failures.push("doctor text rendering is not deterministic".into());
    }
    if !text.contains("OPRC051") || !text.contains("a → b") {
        failures.push(format!("text rendering lacks the fusable chain: {text}"));
    }

    if failures.is_empty() {
        println!("flow_doctor_smoke: ok — OPRC050-053 reported, shape pinned");
    } else {
        for f in &failures {
            eprintln!("flow_doctor_smoke: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
