//! Closed-loop multi-worker throughput benchmark for the embedded
//! invocation plane.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --release --bin invoke_throughput [-- --quick] [--check]
//! ```
//!
//! Sweeps workers × shards over two seeded invocation mixes and emits
//! `BENCH_throughput.json` with aggregate ops/s per case:
//!
//! - `distinct` — each worker drives its own pool of objects (ids spread
//!   across shards), so shard locks should never serialize workers: this
//!   is the scaling mix the `--check` gate measures;
//! - `same_object` — every worker hammers one object, so the shard lock
//!   fully serializes the plane: the floor the contention counters are
//!   meant to surface (throughput here legitimately does not scale).
//!
//! Each worker runs a closed loop (next invoke issued as soon as the
//! previous returns — no pacing), so aggregate ops/s measures how much
//! the `&self` invocation plane actually parallelizes.
//!
//! With `--check` the run gates (exit non-zero on violation):
//!
//! - the JSON shape is pinned (all cases present with all keys);
//! - on hosts with ≥ 4 CPUs (`scaling` mode): 4-worker aggregate ops/s
//!   must be ≥ 1.8× 1-worker on the distinct mix at the default shard
//!   count;
//! - on smaller hosts (`no_collapse` mode, e.g. 1-CPU CI containers
//!   where a real 4× speedup is physically impossible): 4-worker
//!   aggregate ops/s must stay ≥ 0.5× 1-worker — concurrency overhead
//!   must not collapse throughput even when it cannot improve it.
//!
//! The run also sweeps the *node dimension*: 1/2/4/8-node partition
//! planes (grown via live `node_join` migrations) × locality routing
//! on/off × two placement mixes (`distinct` — objects spread over
//! partitions; `same_partition` — every object in one partition).
//! With locality off, execution round-robins across nodes and each
//! off-owner invoke ships the object's state through the owner's
//! transport (a deep copy under a per-node mutex) — the Fig. 3 gap
//! from the paper: the locality-on/locality-off throughput ratio
//! should widen as nodes are added. `--check` gates that ratio at
//! 4 nodes: ≥ 1.5× on hosts with ≥ 4 CPUs, and a ≥ 0.5× no-collapse
//! floor on smaller hosts (where shipping costs still bite but
//! parallelism cannot express the full gap).
//!
//! The gate mode and detected CPU count are recorded in the JSON so a
//! checked-in artifact states which gate it passed.

use std::time::Instant;

use oprc_core::invocation::TaskResult;
use oprc_core::object::ObjectId;
use oprc_core::template::{ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog};
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::{json, vjson, Value};

const SEED: u64 = 42;
/// Distinct-mix objects per worker (enough that the per-worker loop
/// touches several shards).
const OBJECTS_PER_WORKER: usize = 8;
/// `--check`: required 4-worker vs 1-worker speedup on hosts with
/// enough cores to express it.
const REQUIRED_SPEEDUP: f64 = 1.8;
/// `--check` fallback on small hosts: 4 workers must retain at least
/// this fraction of 1-worker throughput.
const NO_COLLAPSE_FLOOR: f64 = 0.5;
/// Node sweep: plane sizes to grow through (each step is a live
/// `node_join` migration).
const NODE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Node sweep: closed-loop workers per case.
const NODE_WORKERS: usize = 4;
/// `--check`: required locality-on vs locality-off throughput ratio at
/// 4 nodes on hosts with ≥ 4 CPUs.
const REQUIRED_LOCALITY_GAIN: f64 = 1.5;
/// `--check` fallback on small hosts: locality-on must retain at least
/// this fraction of locality-off throughput at 4 nodes.
const LOCALITY_NO_COLLAPSE_FLOOR: f64 = 0.5;
/// Payload words carried by every node-sweep object, so off-owner
/// state shipping (a deep copy) has a real cost to pay.
const PAYLOAD_WORDS: u64 = 256;

#[derive(Debug, Clone)]
struct CaseResult {
    mix: &'static str,
    workers: usize,
    shards: usize,
    ops: u64,
    ops_per_sec: f64,
    contended_locks: u64,
}

fn counter_platform(shards: usize) -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::with_shards(shards);
    p.register_function("img/hot-incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Hot
    keySpecs: [count]
    functions:
      - name: incr
        image: img/hot-incr
",
    )
    .expect("hot class deploys");
    p
}

/// Runs `workers` closed loops of `ops_per_worker` invokes each over
/// `targets[w]` (round-robin within a worker's pool) and reports
/// aggregate throughput.
fn run_case(
    mix: &'static str,
    shards: usize,
    workers: usize,
    ops_per_worker: u64,
    targets: &[Vec<ObjectId>],
    p: &EmbeddedPlatform,
) -> CaseResult {
    let contended_before: u64 = p.shard_stats().iter().map(|s| s.contended).sum();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for pool in targets.iter().take(workers) {
            scope.spawn(move || {
                for i in 0..ops_per_worker {
                    let id = pool[(i as usize) % pool.len()];
                    p.invoke(id, "incr", vec![]).expect("invoke succeeds");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let ops = ops_per_worker * workers as u64;
    let contended_after: u64 = p.shard_stats().iter().map(|s| s.contended).sum();
    CaseResult {
        mix,
        workers,
        shards,
        ops,
        ops_per_sec: ops as f64 / elapsed.max(f64::EPSILON),
        contended_locks: contended_after - contended_before,
    }
}

fn sweep(shards: usize, worker_counts: &[usize], ops_per_worker: u64) -> Vec<CaseResult> {
    let max_workers = worker_counts.iter().copied().max().unwrap_or(1);
    let mut results = Vec::new();

    // Distinct mix: per-worker object pools, fresh platform per shard
    // count (object ids restart at 0, so shard placement is seeded and
    // identical across runs).
    let p = counter_platform(shards);
    let pools: Vec<Vec<ObjectId>> = (0..max_workers)
        .map(|_| {
            (0..OBJECTS_PER_WORKER)
                .map(|_| {
                    p.create_object("Hot", vjson!({"count": 0}))
                        .expect("creates")
                })
                .collect()
        })
        .collect();
    for pool in &pools {
        for &id in pool {
            p.invoke(id, "incr", vec![]).expect("warms up");
        }
    }
    for &workers in worker_counts {
        results.push(run_case(
            "distinct",
            shards,
            workers,
            ops_per_worker,
            &pools,
            &p,
        ));
    }

    // Same-object mix: all workers share one pool holding one object.
    let p = counter_platform(shards);
    let hot = p
        .create_object("Hot", vjson!({"count": 0}))
        .expect("creates");
    p.invoke(hot, "incr", vec![]).expect("warms up");
    let shared: Vec<Vec<ObjectId>> = (0..max_workers).map(|_| vec![hot]).collect();
    for &workers in worker_counts {
        results.push(run_case(
            "same_object",
            shards,
            workers,
            ops_per_worker,
            &shared,
            &p,
        ));
    }
    results
}

#[derive(Debug, Clone)]
struct NodeCaseResult {
    mix: &'static str,
    nodes: usize,
    locality: bool,
    workers: usize,
    ops: u64,
    ops_per_sec: f64,
    remote_invokes: u64,
}

/// Builds a platform whose single class template pins locality routing
/// on or off, with every object carrying a payload that makes
/// off-owner state shipping cost something.
fn node_platform(locality: bool) -> EmbeddedPlatform {
    let mut catalog = TemplateCatalog::new();
    catalog.add(ClassRuntimeTemplate::new(
        "default",
        0,
        RuntimeConfig {
            locality_routing: locality,
            ..RuntimeConfig::default()
        },
    ));
    let mut p = EmbeddedPlatform::with_catalog(catalog);
    p.register_function("img/hot-incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Hot
    keySpecs: [count, payload]
    functions:
      - name: incr
        image: img/hot-incr
",
    )
    .expect("hot class deploys");
    p
}

/// One node-sweep case: grow the plane to `nodes` via live joins, pick
/// object pools for the mix, then drive `NODE_WORKERS` closed loops.
fn run_node_case(
    mix: &'static str,
    nodes: usize,
    locality: bool,
    ops_per_worker: u64,
) -> NodeCaseResult {
    let p = node_platform(locality);
    for _ in 1..nodes {
        p.node_join().expect("node joins");
    }
    let payload: Value = (0..PAYLOAD_WORDS)
        .map(Value::from)
        .collect::<Vec<Value>>()
        .into();
    let all: Vec<ObjectId> = (0..256)
        .map(|_| {
            p.create_object("Hot", vjson!({"count": 0, "payload": (payload.clone())}))
                .expect("creates")
        })
        .collect();
    let pools: Vec<Vec<ObjectId>> = match mix {
        // Each worker drives its own pool, spread over partitions the
        // way creation ordered them.
        "distinct" => (0..NODE_WORKERS)
            .map(|w| all[w * OBJECTS_PER_WORKER..(w + 1) * OBJECTS_PER_WORKER].to_vec())
            .collect(),
        // Every worker hammers the partition holding the most objects:
        // one owner node serves (or ships) all the state.
        _ => {
            let mut by_partition: std::collections::BTreeMap<usize, Vec<ObjectId>> =
                std::collections::BTreeMap::new();
            for &id in &all {
                by_partition
                    .entry(p.object_placement(id).partition)
                    .or_default()
                    .push(id);
            }
            let pool = by_partition
                .into_values()
                .max_by_key(Vec::len)
                .expect("objects exist");
            (0..NODE_WORKERS).map(|_| pool.clone()).collect()
        }
    };
    for pool in &pools {
        for &id in pool {
            p.invoke(id, "incr", vec![]).expect("warms up");
        }
    }
    let remote_before: u64 = p.node_stats().iter().map(|n| n.remote_invokes).sum();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for pool in &pools {
            scope.spawn(|| {
                for i in 0..ops_per_worker {
                    let id = pool[(i as usize) % pool.len()];
                    p.invoke(id, "incr", vec![]).expect("invoke succeeds");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let ops = ops_per_worker * NODE_WORKERS as u64;
    let remote_after: u64 = p.node_stats().iter().map(|n| n.remote_invokes).sum();
    NodeCaseResult {
        mix,
        nodes,
        locality,
        workers: NODE_WORKERS,
        ops,
        ops_per_sec: ops as f64 / elapsed.max(f64::EPSILON),
        remote_invokes: remote_after - remote_before,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let ops_per_worker: u64 = if quick { 2_000 } else { 20_000 };
    let worker_counts = [1, 2, 4];
    let shard_counts = [1, oprc_platform::embedded::DEFAULT_SHARD_COUNT];

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let scaling_host = cpus >= 4;
    let gate_mode = if scaling_host {
        "scaling"
    } else {
        "no_collapse"
    };

    let mut results = Vec::new();
    for &shards in &shard_counts {
        results.extend(sweep(shards, &worker_counts, ops_per_worker));
    }

    for r in &results {
        eprintln!(
            "  {:<12} shards={:<3} workers={} ops={:<6} ops/s={:>10.0} contended={:>6}",
            r.mix, r.shards, r.workers, r.ops, r.ops_per_sec, r.contended_locks
        );
    }

    // Node sweep: 1/2/4/8-node planes × locality on/off × two
    // placement mixes, all at NODE_WORKERS closed loops.
    let node_ops_per_worker: u64 = if quick { 1_000 } else { 5_000 };
    let mut node_results = Vec::new();
    for &nodes in &NODE_COUNTS {
        for &locality in &[true, false] {
            for mix in ["distinct", "same_partition"] {
                node_results.push(run_node_case(mix, nodes, locality, node_ops_per_worker));
            }
        }
    }
    for r in &node_results {
        eprintln!(
            "  {:<14} nodes={} locality={:<5} workers={} ops={:<6} ops/s={:>10.0} remote={:>6}",
            r.mix, r.nodes, r.locality, r.workers, r.ops, r.ops_per_sec, r.remote_invokes
        );
    }

    // The Fig. 3 gap: locality-on / locality-off throughput on the
    // distinct mix, per node count.
    let node_by = |mix: &str, nodes: usize, locality: bool| {
        node_results
            .iter()
            .find(|r| r.mix == mix && r.nodes == nodes && r.locality == locality)
            .expect("all node cases ran")
    };
    let locality_gain = |nodes: usize| {
        let off = node_by("distinct", nodes, false).ops_per_sec;
        let on = node_by("distinct", nodes, true).ops_per_sec;
        if off > 0.0 {
            on / off
        } else {
            0.0
        }
    };
    let mut gains = Value::object();
    for &nodes in &NODE_COUNTS {
        gains.insert(format!("{nodes}"), locality_gain(nodes));
    }
    let gain_at_4 = locality_gain(4);

    let by = |mix: &str, shards: usize, workers: usize| {
        results
            .iter()
            .find(|r| r.mix == mix && r.shards == shards && r.workers == workers)
            .expect("all cases ran")
    };
    let default_shards = oprc_platform::embedded::DEFAULT_SHARD_COUNT;
    let base = by("distinct", default_shards, 1).ops_per_sec;
    let four = by("distinct", default_shards, 4).ops_per_sec;
    let speedup = if base > 0.0 { four / base } else { 0.0 };

    let json_results: Vec<Value> = results
        .iter()
        .map(|r| {
            vjson!({
                "mix": (r.mix),
                "workers": (r.workers as u64),
                "shards": (r.shards as u64),
                "ops": (r.ops),
                "ops_per_sec": (r.ops_per_sec),
                "contended_locks": (r.contended_locks),
            })
        })
        .collect();
    let json_node_results: Vec<Value> = node_results
        .iter()
        .map(|r| {
            vjson!({
                "mix": (r.mix),
                "nodes": (r.nodes as u64),
                "locality": (r.locality),
                "workers": (r.workers as u64),
                "ops": (r.ops),
                "ops_per_sec": (r.ops_per_sec),
                "remote_invokes": (r.remote_invokes),
            })
        })
        .collect();
    let doc = vjson!({
        "experiment": "invoke_throughput",
        "seed": SEED,
        "quick": quick,
        "cpus": (cpus as u64),
        "gate_mode": gate_mode,
        "required_speedup": REQUIRED_SPEEDUP,
        "no_collapse_floor": NO_COLLAPSE_FLOOR,
        "distinct_speedup_4w_vs_1w": speedup,
        "results": (Value::from(json_results)),
        "required_locality_gain": REQUIRED_LOCALITY_GAIN,
        "locality_no_collapse_floor": LOCALITY_NO_COLLAPSE_FLOOR,
        "locality_gain_by_nodes": (gains),
        "node_results": (Value::from(json_node_results)),
    });
    match std::fs::write("BENCH_throughput.json", json::to_string_pretty(&doc)) {
        Ok(()) => eprintln!("  wrote BENCH_throughput.json"),
        Err(e) => eprintln!("  could not write BENCH_throughput.json: {e}"),
    }

    if !check {
        return;
    }
    let mut failures = Vec::new();
    // Shape pin: re-parse the emitted file so downstream tooling reads
    // exactly what was gated.
    let emitted = std::fs::read_to_string("BENCH_throughput.json")
        .ok()
        .and_then(|s| json::parse(&s).ok());
    match emitted {
        None => failures.push("BENCH_throughput.json missing or unparsable".to_string()),
        Some(doc) => {
            for key in [
                "experiment",
                "seed",
                "quick",
                "cpus",
                "gate_mode",
                "distinct_speedup_4w_vs_1w",
                "results",
                "locality_gain_by_nodes",
                "node_results",
            ] {
                if doc.get(key).is_none() {
                    failures.push(format!("BENCH_throughput.json lacks '{key}'"));
                }
            }
            let rows = doc["results"].as_array().unwrap_or(&[]).len();
            let want = worker_counts.len() * shard_counts.len() * 2;
            if rows != want {
                failures.push(format!("expected {want} result rows, found {rows}"));
            }
            for r in doc["results"].as_array().unwrap_or(&[]) {
                for key in [
                    "mix",
                    "workers",
                    "shards",
                    "ops",
                    "ops_per_sec",
                    "contended_locks",
                ] {
                    if r.get(key).is_none() {
                        failures.push(format!("result lacks '{key}'"));
                    }
                }
            }
            let rows = doc["node_results"].as_array().unwrap_or(&[]).len();
            let want = NODE_COUNTS.len() * 2 * 2;
            if rows != want {
                failures.push(format!("expected {want} node result rows, found {rows}"));
            }
            for r in doc["node_results"].as_array().unwrap_or(&[]) {
                for key in [
                    "mix",
                    "nodes",
                    "locality",
                    "workers",
                    "ops",
                    "ops_per_sec",
                    "remote_invokes",
                ] {
                    if r.get(key).is_none() {
                        failures.push(format!("node result lacks '{key}'"));
                    }
                }
            }
        }
    }
    // Throughput gate, core-count-aware (see module docs).
    if scaling_host {
        if speedup < REQUIRED_SPEEDUP {
            failures.push(format!(
                "distinct-mix 4-worker ops/s is {speedup:.2}x 1-worker \
                 (required {REQUIRED_SPEEDUP}x on a {cpus}-CPU host)"
            ));
        }
    } else if speedup < NO_COLLAPSE_FLOOR {
        failures.push(format!(
            "distinct-mix 4-worker ops/s collapsed to {speedup:.2}x 1-worker \
             (floor {NO_COLLAPSE_FLOOR}x on a {cpus}-CPU host)"
        ));
    }
    // Sanity: the same-object mix must still make progress under 4
    // workers (per-object serialization, not deadlock).
    let same4 = by("same_object", default_shards, 4).ops_per_sec;
    if same4 <= 0.0 {
        failures.push("same-object mix made no progress under 4 workers".to_string());
    }
    // Locality gate at 4 nodes, core-count-aware like the worker gate:
    // on scaling hosts locality routing must beat shipping; on small
    // hosts it must at least not collapse below it.
    if scaling_host {
        if gain_at_4 < REQUIRED_LOCALITY_GAIN {
            failures.push(format!(
                "4-node locality-on ops/s is {gain_at_4:.2}x locality-off \
                 (required {REQUIRED_LOCALITY_GAIN}x on a {cpus}-CPU host)"
            ));
        }
    } else if gain_at_4 < LOCALITY_NO_COLLAPSE_FLOOR {
        failures.push(format!(
            "4-node locality-on ops/s collapsed to {gain_at_4:.2}x locality-off \
             (floor {LOCALITY_NO_COLLAPSE_FLOOR}x on a {cpus}-CPU host)"
        ));
    }
    // Locality routing must keep execution at the owner: the distinct
    // locality-on cases may not ship state at any plane size.
    for &nodes in &NODE_COUNTS {
        let r = node_by("distinct", nodes, true);
        if r.remote_invokes > 0 {
            failures.push(format!(
                "{}-node locality-on case shipped state {} times",
                nodes, r.remote_invokes
            ));
        }
    }
    // Sanity: the biggest locality-off plane still makes progress
    // (shipping serializes on transports, it must not deadlock).
    if node_by("same_partition", 8, false).ops_per_sec <= 0.0 {
        failures.push("8-node locality-off same-partition mix made no progress".to_string());
    }

    if failures.is_empty() {
        println!(
            "invoke_throughput: ok — distinct 4w/1w speedup {speedup:.2}x, \
             4-node locality gain {gain_at_4:.2}x \
             ({gate_mode} gate on {cpus} CPUs), 1w {base:.0} ops/s, 4w {four:.0} ops/s"
        );
    } else {
        for f in &failures {
            eprintln!("invoke_throughput: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
