//! Extension experiment E2: VM failure and recovery under load.
//!
//! Kills half the worker VMs mid-run and (optionally) brings them back,
//! printing a per-second throughput timeline. Exercises the cluster's
//! eviction/reschedule path and the engines' capacity coupling.
//!
//! ```text
//! cargo run -p oprc-bench --bin availability --release
//! ```

use oprc_bench::format_table;
use oprc_platform::sim::{self, ExperimentConfig, FailureSpec, SystemVariant};
use oprc_simcore::SimDuration;
use oprc_value::vjson;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let vms = 6;
    let warmup = 5u64;
    let fail_at = 5u64; // seconds after warmup
    let recover_after = 6u64;
    let measure = 20u64;

    println!(
        "== E2: failure & recovery timeline ({vms} VMs, {} go down) ==\n",
        vms / 2
    );
    let mut rows = Vec::new();
    let mut timelines = Vec::new();
    let mut json_results = Vec::new();
    for variant in [SystemVariant::Knative, SystemVariant::OprcBypass] {
        let mut cfg = ExperimentConfig::fig3(variant, vms);
        cfg.warmup = SimDuration::from_secs(warmup);
        cfg.measure = SimDuration::from_secs(measure);
        cfg.failure = Some(FailureSpec {
            at: SimDuration::from_secs(fail_at),
            vms_down: vms / 2,
            recover_after: Some(SimDuration::from_secs(recover_after)),
        });
        let r = sim::run(cfg);
        let steady = |range: std::ops::Range<usize>| -> f64 {
            let xs: Vec<u64> = range.map(|s| *r.per_second.get(s).unwrap_or(&0)).collect();
            xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64
        };
        let before = steady(6..9);
        let during = steady(12..15);
        let after = steady(18..22);
        rows.push(vec![
            variant.label().to_string(),
            format!("{before:.0}"),
            format!("{during:.0}"),
            format!("{after:.0}"),
            format!("{:.0}%", 100.0 * during / before.max(1.0)),
        ]);
        json_results.push(vjson!({
            "system": (variant.label()),
            "vms": (r.vms),
            "before_per_s": before,
            "during_per_s": during,
            "after_per_s": after,
            "retained_pct": (100.0 * during / before.max(1.0)),
            "per_second": (r.per_second.clone()),
        }));
        timelines.push((variant.label(), r.per_second.clone()));
    }
    // Machine-readable results in the same shape as BENCH_fig3.json.
    let doc = vjson!({
        "experiment": "availability",
        "seed": 42,
        "quick": quick,
        "results": (oprc_value::Value::from(json_results)),
    });
    match std::fs::write(
        "BENCH_availability.json",
        oprc_value::json::to_string_pretty(&doc),
    ) {
        Ok(()) => eprintln!("  wrote BENCH_availability.json"),
        Err(e) => eprintln!("  could not write BENCH_availability.json: {e}"),
    }
    println!(
        "{}",
        format_table(
            &[
                "system".into(),
                "before/s".into(),
                "during/s".into(),
                "after/s".into(),
                "retained".into(),
            ],
            &rows
        )
    );

    println!(
        "per-second timeline (fail at t={}s, recover at t={}s):",
        warmup + fail_at,
        warmup + fail_at + recover_after
    );
    for (label, tl) in &timelines {
        let spark: String = tl
            .iter()
            .take((warmup + measure) as usize + 3)
            .map(|&c| {
                let peak = *tl.iter().max().unwrap_or(&1) as f64;
                let idx = (c as f64 / peak * 7.0).round() as usize;
                ['.', '▁', '▂', '▃', '▄', '▅', '▆', '▇'][idx.min(7)]
            })
            .collect();
        println!("  {label:<24} {spark}");
    }
    println!("\n(cluster evicts pods from down nodes; the scheduler reschedules what fits;");
    println!(" replacements pay a container cold start on recovery)");
}
