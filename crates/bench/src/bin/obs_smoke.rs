//! Observability smoke: deterministic profile/SLO exports plus a warm
//! invoke overhead gate for the always-on metrics windows.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --release --bin obs_smoke [-- --quick] [--check]
//! ```
//!
//! Two halves:
//!
//! 1. **Determinism + shape.** Runs a fixed session (seed-42 platform,
//!    virtual clock, logical-clock telemetry) twice and requires the
//!    `profile --json`, `profile --collapsed`, and `slo --json` exports
//!    to be byte-identical across runs, with their top-level JSON
//!    shapes pinned. This is what makes the flamegraph and burn-rate
//!    surfaces scriptable: downstream tooling can diff them.
//! 2. **Overhead gate** (`--check`). The sliding windows and SLO engine
//!    ride the warm invoke path (one striped-buffer push per invoke).
//!    Re-measures the warm invoke and requires it within 10% of the
//!    `warm_invoke` ns/op recorded in `BENCH_invoke.json` by the
//!    `invoke_hotpath` bench — run that first (ci.sh does).

use std::time::Instant;

use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::gateway::OprcCtl;
use oprc_simcore::SimDuration;
use oprc_telemetry::{ClockMode, TelemetryConfig, TelemetryLevel};
use oprc_value::{json, vjson, Value};

const SEED: u64 = 42;
/// Warm invoke may be at most this much slower than the recorded
/// `invoke_hotpath` baseline (which runs the same always-on windows).
const OVERHEAD_BUDGET: f64 = 1.10;

fn register_counter(p: &mut EmbeddedPlatform) {
    p.register_function("img/obs-incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
}

/// One fixed observability session: virtual clock, logical-clock
/// telemetry, 60 warm invokes spread over 30s of virtual time, one
/// platform tick, then the three deterministic exports.
fn observed_session() -> (String, String, String) {
    let mut p = EmbeddedPlatform::new();
    p.enable_virtual_clock();
    p.enable_telemetry(TelemetryConfig {
        level: TelemetryLevel::Spans,
        clock: ClockMode::Logical,
        capacity: 4096,
    });
    register_counter(&mut p);
    p.deploy_yaml(
        "
classes:
  - name: Obs
    keySpecs: [count]
    qos:
      availability: 0.999
      latency: 50
    functions:
      - name: incr
        image: img/obs-incr
",
    )
    .expect("obs class deploys");
    let id = p
        .create_object("Obs", vjson!({"count": 0}))
        .expect("creates");
    for _ in 0..60 {
        p.invoke(id, "incr", vec![]).expect("invokes");
        p.advance_clock(SimDuration::from_millis(500));
    }
    p.tick();
    let mut ctl = OprcCtl::new(p);
    let profile = ctl.execute("profile --json").expect("profile runs").text;
    let collapsed = ctl
        .execute("profile --collapsed")
        .expect("collapsed runs")
        .text;
    let slo = ctl.execute("slo --json").expect("slo runs").text;
    (profile, collapsed, slo)
}

/// The same hot-object state `invoke_hotpath` measures against: 64
/// nested fields plus the counter, so the numbers are comparable.
fn big_state() -> Value {
    let mut v = Value::object();
    for i in 0..64 {
        v.insert(
            format!("field_{i:02}"),
            vjson!({
                "idx": i,
                "payload": "0123456789abcdef0123456789abcdef",
                "tags": ["hot", "bench"],
            }),
        );
    }
    v.insert("count", 0_i64);
    v
}

/// Warm invoke ns/op with windows + SLO active (they always are), best
/// of three batches to damp scheduler noise. Mirrors the
/// `invoke_hotpath` warm case (same class shape, same state) so the
/// ratio against its recorded baseline isolates observability cost.
fn warm_ns_per_op(ops: u64) -> u64 {
    let mut p = EmbeddedPlatform::new();
    register_counter(&mut p);
    p.deploy_yaml(
        "
classes:
  - name: Hot
    keySpecs: [count]
    functions:
      - name: incr
        image: img/obs-incr
",
    )
    .expect("hot class deploys");
    let id = p.create_object("Hot", big_state()).expect("creates");
    for _ in 0..ops / 8 {
        p.invoke(id, "incr", vec![]).expect("warms up");
    }
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..ops {
                p.invoke(id, "incr", vec![]).expect("warm invoke");
            }
            (t0.elapsed().as_nanos() as u64) / ops.max(1)
        })
        .min()
        .unwrap_or(u64::MAX)
}

/// The `warm_invoke` ns/op recorded by the `invoke_hotpath` bench.
fn baseline_warm_ns_per_op() -> Option<u64> {
    let doc = json::parse(&std::fs::read_to_string("BENCH_invoke.json").ok()?).ok()?;
    doc["results"]
        .as_array()?
        .iter()
        .find(|r| r["case"].as_str() == Some("warm_invoke"))?["ns_per_op"]
        .as_u64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut failures: Vec<String> = Vec::new();

    // --- Determinism: two fresh sessions must export identical bytes.
    let (profile_a, collapsed_a, slo_a) = observed_session();
    let (profile_b, collapsed_b, slo_b) = observed_session();
    if profile_a != profile_b {
        failures.push("profile --json differs between identical runs".into());
    }
    if collapsed_a != collapsed_b {
        failures.push("profile --collapsed differs between identical runs".into());
    }
    if slo_a != slo_b {
        failures.push("slo --json differs between identical runs".into());
    }

    // --- Shape pins.
    match json::parse(&profile_a) {
        Err(e) => failures.push(format!("profile --json unparsable: {e}")),
        Ok(doc) => {
            let keys: Vec<&str> = doc
                .as_object()
                .map(|o| o.keys().map(String::as_str).collect())
                .unwrap_or_default();
            if keys != ["frames", "stacks"] {
                failures.push(format!("profile keys {keys:?} != [frames, stacks]"));
            }
            let frame_names: Vec<&str> = doc["frames"]
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|f| f["name"].as_str())
                .collect();
            if !frame_names.contains(&"Obs::incr") {
                failures.push(format!(
                    "no Obs::incr root frame in profile (got {frame_names:?})"
                ));
            }
            for want in ["route", "engine.execute", "state.commit"] {
                if !frame_names.contains(&want) {
                    failures.push(format!("no '{want}' frame in profile"));
                }
            }
            for f in doc["frames"].as_array().unwrap_or(&[]) {
                for key in ["count", "name", "self_ns", "total_ns"] {
                    if f.get(key).is_none() {
                        failures.push(format!("profile frame lacks '{key}'"));
                    }
                }
            }
        }
    }
    if !collapsed_a.lines().any(|l| l.starts_with("Obs::incr")) {
        failures.push("collapsed stacks do not start at Obs::incr".into());
    }
    match json::parse(&slo_a) {
        Err(e) => failures.push(format!("slo --json unparsable: {e}")),
        Ok(doc) => {
            let row = doc["classes"]
                .as_array()
                .unwrap_or(&[])
                .iter()
                .find(|r| r["class"].as_str() == Some("Obs"))
                .cloned()
                .unwrap_or(Value::Null);
            let keys: Vec<&str> = row
                .as_object()
                .map(|o| o.keys().map(String::as_str).collect())
                .unwrap_or_default();
            if keys
                != [
                    "active",
                    "availability",
                    "burn_fast",
                    "burn_slow",
                    "class",
                    "error_budget",
                    "latency_ok",
                    "max_p99_ms",
                    "status",
                    "window_p99_ms",
                ]
            {
                failures.push(format!("slo row keys not pinned: {keys:?}"));
            }
            if row["status"].as_str() != Some("ok") {
                failures.push(format!(
                    "healthy class should be ok, got {:?}",
                    row["status"].as_str()
                ));
            }
            if row["active"].as_bool() != Some(true) {
                failures.push("class with window traffic should be active".into());
            }
            if row["max_p99_ms"].as_u64() != Some(50) {
                failures.push("declared latency objective not surfaced".into());
            }
        }
    }

    // --- Overhead gate: windows + SLO within budget of the recorded
    // warm path.
    let ops = if quick { 512 } else { 2048 };
    let measured = warm_ns_per_op(ops);
    match baseline_warm_ns_per_op() {
        Some(baseline) => {
            let ratio = measured as f64 / baseline.max(1) as f64;
            eprintln!(
                "  warm_invoke ns/op: measured {measured}, baseline {baseline} (x{ratio:.3})"
            );
            if check && ratio > OVERHEAD_BUDGET {
                failures.push(format!(
                    "warm invoke with windows+SLO is {measured} ns/op, more than \
                     {OVERHEAD_BUDGET}x the {baseline} ns/op BENCH_invoke.json baseline"
                ));
            }
        }
        None => {
            let msg = "BENCH_invoke.json missing warm_invoke — run invoke_hotpath first";
            if check {
                failures.push(msg.into());
            } else {
                eprintln!("  {msg} (overhead gate skipped)");
            }
        }
    }

    if failures.is_empty() {
        println!(
            "obs_smoke: ok — seed {SEED} exports byte-stable ({} profile bytes, {} slo bytes)",
            profile_a.len(),
            slo_a.len()
        );
    } else {
        for f in &failures {
            eprintln!("obs_smoke: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
