//! Chaos smoke test: a fixed-seed fault-injection run over the image
//! pipeline, gating CI on the retry layer's recovery rate and on the
//! chaos trace shape.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --bin chaos_smoke [-- <output-path>]
//! ```
//!
//! Installs the Listing-1 image functions, deploys a chaos overlay
//! class (`ChaosImage`: same images and `pipeline` dataflow, plus an
//! `availability: 0.99` NFR so the retry layer arms with 3 attempts),
//! and drives the pipeline repeatedly under a seeded probabilistic
//! fault plan. Asserts:
//!
//! - most invocations still succeed (success-after-retry rate),
//! - retries and injected faults actually happened (metrics),
//! - the Chrome export contains `chaos.fault` / `retry.backoff` events,
//! - a second run with the same seed is byte-identical (JSONL export).
//!
//! Exits non-zero on any violation so `ci.sh` can gate on it.

use oprc_chaos::FaultPlan;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_telemetry::TelemetryConfig;
use oprc_value::{json, vjson};
use oprc_workloads::image::{generate_image, install};

const SEED: u64 = 42;
const RUNS: usize = 24;

/// The image pipeline under a chaos-specific class name. The paper's
/// `multimedia` package stays pristine; this overlay reuses its
/// function images and adds the availability tier that arms retries.
const CHAOS_PACKAGE: &str = "
name: chaosmedia
classes:
  - name: ChaosImage
    qos:
      availability: 0.99
    constraint:
      persistent: true
    keySpecs:
      - name: image
        type: file
    functions:
      - name: resize
        image: img/resize
      - name: detectObject
        image: img/detect-object
    dataflows:
      - name: pipeline
        output: label
        steps:
          - id: shrink
            function: resize
            inputs: [input]
          - id: label
            function: detectObject
            inputs: [\"step:shrink\"]
";

/// One full chaos run. Returns the deterministic JSONL export, the
/// Chrome export, the success count, and (retries, faults) totals.
fn run() -> (String, String, usize, u64, u64) {
    let mut p = EmbeddedPlatform::new();
    p.enable_telemetry(TelemetryConfig::default());
    install(&mut p).expect("image package deploys");
    p.deploy_yaml(CHAOS_PACKAGE).expect("chaos overlay deploys");
    p.enable_chaos(FaultPlan::new(SEED).rate_all(0.15).latency_share(0.3));

    let mut ok = 0_usize;
    for _ in 0..RUNS {
        let id = p.create_object("ChaosImage", vjson!({})).expect("creates");
        let url = p.upload_url(id, "image").expect("presigns");
        p.upload(&url, generate_image(64, 32, 3), "image/raw")
            .expect("uploads");
        // Faults may exhaust the 3-attempt budget; that is the point of
        // the recovery-rate assertion below.
        if let Ok(out) = p.invoke(id, "pipeline", vec![vjson!({"width": 16, "height": 8})]) {
            assert_eq!(out.output["objects"].as_i64(), Some(3), "detector output");
            ok += 1;
        }
    }

    let retries: u64 = p
        .metrics()
        .function_summaries()
        .iter()
        .map(|f| f.retries)
        .sum();
    let faults: u64 = p.metrics().fault_totals().iter().map(|(_, n)| n).sum();
    let jsonl = p.telemetry().export_jsonl();
    let chrome = p.telemetry().export_chrome();
    (jsonl, chrome, ok, retries, faults)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_chaos.json".to_string());

    let (jsonl, chrome, ok, retries, faults) = run();
    std::fs::write(&path, &chrome).expect("writes trace");

    let mut failures = Vec::new();

    // Success-after-retry rate: the seeded plan injects enough faults
    // to exercise retries, but the budget must absorb most of them.
    if ok * 3 < RUNS * 2 {
        failures.push(format!(
            "only {ok}/{RUNS} pipeline runs succeeded under chaos"
        ));
    }
    if ok == RUNS {
        failures.push("no pipeline run failed — the fault plan is not biting".into());
    }
    if retries == 0 {
        failures.push("metrics show zero retries under a faulting plan".into());
    }
    if faults == 0 {
        failures.push("metrics show zero injected faults".into());
    }

    // Trace shape: chaos instants and retry backoffs must be visible in
    // the Chrome export alongside the ordinary invocation spans.
    let doc = json::parse(&chrome).expect("chrome export parses");
    let events = doc.as_array().expect("chrome export is an array");
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e["name"].as_str() == Some(name))
            .count()
    };
    for name in [
        "chaos.fault",
        "retry.backoff",
        "invoke",
        "engine.execute",
        "state.commit",
    ] {
        if count(name) == 0 {
            failures.push(format!("no '{name}' events in the trace"));
        }
    }

    // Reproducibility: the same seed replays byte-identically.
    let (jsonl2, _, ok2, _, _) = run();
    if jsonl != jsonl2 || ok != ok2 {
        failures.push("same-seed rerun diverged from the first run".into());
    }

    if failures.is_empty() {
        println!(
            "chaos_smoke: ok — {ok}/{RUNS} succeeded, {retries} retries, \
             {faults} faults, {} events exported to {path}",
            events.len()
        );
    } else {
        for f in &failures {
            eprintln!("chaos_smoke: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
