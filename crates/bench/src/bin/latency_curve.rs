//! Extension experiment E1: open-loop latency-vs-offered-load curves.
//!
//! The paper's Fig. 3 is a closed-loop saturation study; this companion
//! sweeps offered load below and across saturation to show *where*
//! latency departs, per system. The knative curve degrades first — its
//! responses queue on the database write path — while the oprc variants
//! hold their floor until compute saturates.
//!
//! ```text
//! cargo run -p oprc-bench --bin latency_curve --release [-- --quick]
//! ```

use oprc_bench::format_table;
use oprc_platform::sim::{self, ExperimentConfig, LoadMode, SystemVariant};
use oprc_simcore::SimDuration;
use oprc_value::vjson;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (3, 5) } else { (5, 15) };
    let vms = 6;
    // Offered load per VM; 6 VMs × 4 pods at ~4-6ms → capacity
    // ~4.2-6k/s total, so the sweep crosses each system's knee.
    let rates = [100.0, 300.0, 500.0, 700.0, 900.0, 1100.0];

    println!("== E1: open-loop latency vs offered load ({vms} VMs) ==\n");
    let mut rows = Vec::new();
    let mut json_results = Vec::new();
    for variant in SystemVariant::all() {
        for &rate in &rates {
            let mut cfg = ExperimentConfig::fig3(variant, vms);
            cfg.load = LoadMode::Open { rate_per_vm: rate };
            cfg.warmup = SimDuration::from_secs(warmup);
            cfg.measure = SimDuration::from_secs(measure);
            let r = sim::run(cfg);
            rows.push(vec![
                variant.label().to_string(),
                format!("{:.0}", rate * vms as f64),
                format!("{:.0}", r.throughput),
                format!("{:.1}", r.p50_ms),
                format!("{:.1}", r.p99_ms),
                r.rejected.to_string(),
            ]);
            json_results.push(vjson!({
                "system": (variant.label()),
                "vms": (r.vms),
                "offered_per_s": (rate * vms as f64),
                "throughput": (r.throughput),
                "p50_ms": (r.p50_ms),
                "p99_ms": (r.p99_ms),
                "rejected": (r.rejected),
            }));
            eprintln!(
                "  {} offered={:>5.0}/s got={:>5.0}/s p99={:>8.1}ms",
                variant.label(),
                rate * vms as f64,
                r.throughput,
                r.p99_ms
            );
        }
    }
    // Machine-readable results in the same shape as BENCH_fig3.json.
    let doc = vjson!({
        "experiment": "latency_curve",
        "seed": 42,
        "quick": quick,
        "results": (oprc_value::Value::from(json_results)),
    });
    match std::fs::write(
        "BENCH_latency.json",
        oprc_value::json::to_string_pretty(&doc),
    ) {
        Ok(()) => eprintln!("  wrote BENCH_latency.json"),
        Err(e) => eprintln!("  could not write BENCH_latency.json: {e}"),
    }
    println!(
        "{}",
        format_table(
            &[
                "system".into(),
                "offered/s".into(),
                "served/s".into(),
                "p50 ms".into(),
                "p99 ms".into(),
                "rejected".into(),
            ],
            &rows
        )
    );
    println!("Reading: knative's p99 departs once offered load approaches the DB write");
    println!("budget; oprc variants keep their latency floor until compute saturates.");
}
