//! Telemetry smoke test: runs the image workload under tracing and
//! shape-checks the exported Chrome trace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oprc-bench --bin trace_smoke [-- <output-path>]
//! ```
//!
//! Deploys the paper's Listing-1 image package on the embedded
//! platform with the deterministic logical-clock sink, uploads a
//! generated raster via a presigned PUT URL, runs the `pipeline`
//! dataflow (resize → detectObject), and writes the Chrome
//! `chrome://tracing` export (default `target/trace_image.json`).
//! Exits non-zero when the trace is missing expected spans, so CI can
//! gate on it.

use oprc_platform::embedded::EmbeddedPlatform;
use oprc_telemetry::TelemetryConfig;
use oprc_value::{json, vjson};
use oprc_workloads::image::{generate_image, install};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_image.json".to_string());

    let mut p = EmbeddedPlatform::new();
    p.enable_telemetry(TelemetryConfig::default());
    install(&mut p).expect("image package deploys");

    let id = p
        .create_object("LabelledImage", vjson!({}))
        .expect("creates");
    let url = p.upload_url(id, "image").expect("presigns");
    p.upload(&url, generate_image(64, 32, 3), "image/raw")
        .expect("uploads");
    let out = p
        .invoke(id, "pipeline", vec![vjson!({"width": 16, "height": 8})])
        .expect("pipeline runs");
    assert_eq!(out.output["objects"].as_i64(), Some(3), "detector output");

    let chrome = p.telemetry().export_chrome();
    std::fs::write(&path, &chrome).expect("writes trace");

    // Shape-check the export: a valid JSON event array containing the
    // root invoke span and the compiled (fused) pipeline shape.
    let doc = json::parse(&chrome).expect("chrome export parses");
    let events = doc.as_array().expect("chrome export is an array");
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e["name"].as_str() == Some(name))
            .count()
    };
    let mut failures = Vec::new();
    if count("invoke") != 1 {
        failures.push(format!("expected 1 invoke span, got {}", count("invoke")));
    }
    // The flow compiler (DESIGN.md §13) fuses the same-object
    // resize → detectObject chain into one unit under a single stage:
    // one shard-lock hold, one state load, one commit — but still one
    // engine.execute per step.
    let stages = count("dataflow.stage");
    if stages != 1 {
        failures.push(format!(
            "fused pipeline compiles to 1 stage, trace shows {stages} dataflow.stage spans"
        ));
    }
    if count("dataflow.fused") != 1 {
        failures.push(format!(
            "expected 1 dataflow.fused span, got {}",
            count("dataflow.fused")
        ));
    }
    if count("engine.execute") != 2 {
        failures.push(format!(
            "fused chain has 2 steps, trace shows {} engine.execute spans",
            count("engine.execute")
        ));
    }
    for name in ["route", "state.load", "presign", "state.commit"] {
        if count(name) == 0 {
            failures.push(format!("no '{name}' spans in the trace"));
        }
    }
    if !events
        .iter()
        .all(|e| matches!(e["ph"].as_str(), Some("X" | "i")) && e["ts"].as_u64().is_some())
    {
        failures.push("event missing ph/ts fields".into());
    }

    if failures.is_empty() {
        println!(
            "trace_smoke: ok — {} events ({stages} stages) exported to {path}",
            events.len()
        );
    } else {
        for f in &failures {
            eprintln!("trace_smoke: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
