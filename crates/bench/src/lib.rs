//! Shared helpers for the benchmark harness.
//!
//! The quantitative reproduction lives in the `fig3` binary
//! (`cargo run -p oprc-bench --bin fig3 --release`); the criterion
//! benches measure component latencies. This library holds the table
//! formatting and the template→simulation-config mapping used by the
//! ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oprc_core::template::{EngineBacking, RuntimeConfig};
use oprc_platform::sim::{ExperimentConfig, SystemVariant};
use oprc_simcore::SimDuration;
use oprc_store::WriteBehindConfig;

/// Formats a rows×cols table with a header, aligned for terminal
/// output.
pub fn format_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(std::string::String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Maps a class-runtime template's [`RuntimeConfig`] onto the simulation
/// parameters it would induce, for the template ablation (A2).
pub fn sim_config_for_template(
    base: SystemVariant,
    vms: u32,
    config: &RuntimeConfig,
) -> ExperimentConfig {
    let variant = match (config.engine, config.persistent) {
        (_, false) => SystemVariant::OprcBypassNonPersist,
        (EngineBacking::Knative, true) => SystemVariant::Oprc,
        (EngineBacking::PlainDeployment, true) => SystemVariant::OprcBypass,
    };
    let mut cfg = ExperimentConfig::fig3(variant, vms);
    cfg.write_behind = WriteBehindConfig {
        max_batch: config.write_behind_batch,
        max_delay: SimDuration::from_millis(config.write_behind_delay_ms),
    };
    // Keep the caller's requested baseline when it is the plain FaaS
    // control.
    if base == SystemVariant::Knative {
        cfg.variant = SystemVariant::Knative;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use oprc_core::nfr::NfrSpec;
    use oprc_core::template::TemplateCatalog;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["vms".into(), "throughput".into()],
            &[
                vec!["3".into(), "1234".into()],
                vec!["12".into(), "56789".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("vms"));
        assert!(lines[3].ends_with("56789"));
    }

    #[test]
    fn template_mapping_covers_variants() {
        let catalog = TemplateCatalog::standard();
        let nfr = NfrSpec::from_value(&oprc_value::vjson!({
            "qos": {"throughput": 5000},
        }))
        .unwrap();
        let t = catalog.select(&nfr).unwrap();
        let cfg = sim_config_for_template(SystemVariant::Oprc, 6, &t.config);
        assert_eq!(cfg.variant, SystemVariant::OprcBypass);
        assert_eq!(cfg.write_behind.max_batch, 500);
        // Non-persistent config maps to the nonpersist variant.
        let mut c = t.config.clone();
        c.persistent = false;
        let cfg = sim_config_for_template(SystemVariant::Oprc, 6, &c);
        assert_eq!(cfg.variant, SystemVariant::OprcBypassNonPersist);
    }
}
