//! JSON parsing and emission.
//!
//! A hand-written recursive-descent parser and a compact/pretty emitter for
//! [`Value`]. Full RFC 8259 syntax is supported (nested containers, all
//! escape sequences including `\uXXXX` surrogate pairs, scientific-notation
//! numbers). Inputs must be UTF-8 `&str`.
//!
//! # Examples
//!
//! ```
//! use oprc_value::json;
//!
//! let v = json::parse(r#"[1, {"k": "é"}, null]"#)?;
//! assert_eq!(v[1]["k"].as_str(), Some("é"));
//! let round = json::parse(&json::to_string(&v))?;
//! assert_eq!(v, round);
//! # Ok::<(), oprc_value::ParseError>(())
//! ```

use crate::{Map, Number, ParseError, Position, Value};

/// Maximum container nesting depth accepted by [`parse`].
///
/// Guards against stack overflow on adversarial inputs.
pub const MAX_DEPTH: usize = 128;

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, trailing garbage, or nesting
/// deeper than [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Serializes a value as compact JSON (no whitespace).
pub fn to_string(value: &Value) -> String {
    let mut out = String::with_capacity(value.approx_size());
    emit(value, &mut out);
    out
}

/// Serializes a value as pretty-printed JSON with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::with_capacity(value.approx_size() * 2);
    emit_pretty(value, 0, &mut out);
    out
}

fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => emit_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(v, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(v, out);
            }
            out.push('}');
        }
    }
}

fn emit_pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                emit_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                emit_string(k, out);
                out.push_str(": ");
                emit_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => emit(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn position(&self) -> Position {
        Position::new(self.line, self.pos - self.line_start + 1)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.position())
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(x) if x == b => {
                self.bump();
                Ok(())
            }
            Some(x) => Err(self.err(format!("expected '{}', found '{}'", b as char, x as char))),
            None => Err(self.err(format!("expected '{}', found end of input", b as char))),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str, value: Value) -> Result<Value, ParseError> {
        for &b in kw.as_bytes() {
            if self.peek() == Some(b) {
                self.bump();
            } else {
                return Err(self.err(format!("invalid literal, expected '{kw}'")));
            }
        }
        Ok(value)
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                Some(c) => {
                    return Err(self.err(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        c as char
                    )))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(c) => {
                    return Err(self.err(format!(
                        "expected ',' or ']' in array, found '{}'",
                        c as char
                    )))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: input is valid UTF-8 and we only stopped on ASCII
                // boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("control character inside string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{08}'),
            Some(b'f') => out.push('\u{0c}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("expected low surrogate escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unexpected low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))?
                };
                out.push(c);
            }
            Some(c) => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
            None => return Err(self.err("unterminated escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("unterminated unicode escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in unicode escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let int_digits = self.digits()?;
        if int_digits > 1
            && self.bytes[if self.bytes[start] == b'-' {
                start + 1
            } else {
                start
            }] == b'0'
        {
            return Err(self.err("leading zeros are not allowed"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        let num = if is_float {
            Number::from(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid float literal"))?,
            )
        } else {
            match text.parse::<i64>() {
                Ok(i) => Number::Int(i),
                // Integer overflow: fall back to float like serde_json's
                // arbitrary-precision-off behaviour.
                Err(_) => Number::from(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid integer literal"))?,
                ),
            }
        };
        Ok(Value::Number(num))
    }

    fn digits(&mut self) -> Result<usize, ParseError> {
        let mut n = 0;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.bump();
                n += 1;
            } else {
                break;
            }
        }
        if n == 0 {
            Err(self.err("expected digit"))
        } else {
            Ok(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vjson;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-1.5E-2").unwrap().as_f64(), Some(-0.015));
        assert_eq!(parse(r#""hi""#).unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parse_containers() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x"));
        assert_eq!(parse("[]").unwrap(), Value::array());
        assert_eq!(parse("{}").unwrap(), Value::object());
        assert_eq!(parse("[ ]").unwrap(), Value::array());
    }

    #[test]
    fn parse_escapes() {
        let v = parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn reject_lone_surrogate() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn reject_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "nul",
            "01",
            "1.",
            "1e",
            "\"abc",
            "[1] garbage",
            "{'a': 1}",
            "+1",
            "--1",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_positions() {
        let err = parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(err.position().line, 2);
    }

    #[test]
    fn integer_overflow_falls_back_to_float() {
        let v = parse("123456789012345678901234567890").unwrap();
        assert!(v.as_f64().unwrap() > 1e29);
    }

    #[test]
    fn round_trip_compact() {
        let v = vjson!({
            "s": "he\"llo\n",
            "n": 12.5,
            "i": (-3),
            "a": [1, [2, [3]]],
            "o": {"nested": true},
            "z": null,
        });
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn round_trip_pretty() {
        let v = vjson!({"a": [1, 2], "b": {"c": "d"}, "e": [], "f": {}});
        let text = to_string_pretty(&v);
        assert!(text.contains("\n  "));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_is_compact() {
        let v = vjson!({"a": [1, 2]});
        assert_eq!(to_string(&v), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn control_chars_escaped_on_emit() {
        let v = Value::from("\u{01}x");
        let text = to_string(&v);
        assert_eq!(text, "\"\\u0001x\"");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut deep = String::new();
        for _ in 0..(MAX_DEPTH + 2) {
            deep.push('[');
        }
        deep.push('1');
        for _ in 0..(MAX_DEPTH + 2) {
            deep.push(']');
        }
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v["a"][1].as_i64(), Some(2));
    }

    #[test]
    fn unicode_pass_through() {
        let v = parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }
}
