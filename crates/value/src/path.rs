//! JSON-pointer-style navigation (RFC 6901 subset).
//!
//! Pointers are `/`-separated token paths: `""` selects the whole document,
//! `/a/b/0` selects index 0 of array `b` inside object `a`. The RFC 6901
//! escapes `~0` (for `~`) and `~1` (for `/`) are supported.
//!
//! # Examples
//!
//! ```
//! use oprc_value::vjson;
//!
//! let v = vjson!({"qos": {"throughput": 100}, "fns": ["resize"]});
//! assert_eq!(v.pointer("/qos/throughput").and_then(|x| x.as_i64()), Some(100));
//! assert_eq!(v.pointer("/fns/0").and_then(|x| x.as_str()), Some("resize"));
//! assert!(v.pointer("/missing").is_none());
//! ```

use crate::Value;

/// Resolves `pointer` against `value`, returning the referenced node.
///
/// Returns `None` if any token fails to resolve or if the pointer is
/// syntactically invalid (non-empty but not starting with `/`).
pub fn pointer<'v>(value: &'v Value, pointer: &str) -> Option<&'v Value> {
    if pointer.is_empty() {
        return Some(value);
    }
    if !pointer.starts_with('/') {
        return None;
    }
    let mut cur = value;
    for token in pointer[1..].split('/') {
        let token = unescape(token);
        cur = match cur {
            Value::Object(m) => m.get(token.as_ref())?,
            Value::Array(a) => a.get(parse_index(&token)?)?,
            _ => return None,
        };
    }
    Some(cur)
}

/// Mutable variant of [`pointer()`].
pub fn pointer_mut<'v>(value: &'v mut Value, pointer: &str) -> Option<&'v mut Value> {
    if pointer.is_empty() {
        return Some(value);
    }
    if !pointer.starts_with('/') {
        return None;
    }
    let mut cur = value;
    for token in pointer[1..].split('/') {
        let token = unescape(token);
        cur = match cur {
            Value::Object(m) => m.get_mut(token.as_ref())?,
            Value::Array(a) => {
                let idx = parse_index(&token)?;
                a.get_mut(idx)?
            }
            _ => return None,
        };
    }
    Some(cur)
}

/// Sets the node at `pointer` to `new`, creating intermediate objects as
/// needed.
///
/// Array tokens must reference existing indices or the one-past-the-end
/// position (append). Returns `false` (and leaves `value` unchanged in
/// prefix) when the path cannot be created, e.g. indexing a string.
pub fn set(value: &mut Value, pointer: &str, new: Value) -> bool {
    if pointer.is_empty() {
        *value = new;
        return true;
    }
    if !pointer.starts_with('/') {
        return false;
    }
    let tokens: Vec<String> = pointer[1..]
        .split('/')
        .map(|t| unescape(t).into_owned())
        .collect();
    let mut cur = value;
    for (i, token) in tokens.iter().enumerate() {
        let last = i + 1 == tokens.len();
        if cur.is_null() {
            *cur = Value::object();
        }
        match cur {
            Value::Object(m) => {
                if last {
                    m.insert(token.clone(), new);
                    return true;
                }
                cur = m.entry(token.clone()).or_insert(Value::Null);
            }
            Value::Array(a) => {
                let idx = if token == "-" {
                    a.len()
                } else {
                    match parse_index(token) {
                        Some(i) => i,
                        None => return false,
                    }
                };
                if idx > a.len() {
                    return false;
                }
                if idx == a.len() {
                    a.push(Value::Null);
                }
                if last {
                    a[idx] = new;
                    return true;
                }
                cur = &mut a[idx];
            }
            _ => return false,
        }
    }
    unreachable!("loop always returns on the last token")
}

fn parse_index(token: &str) -> Option<usize> {
    if token.len() > 1 && token.starts_with('0') {
        return None; // RFC 6901 forbids leading zeros
    }
    token.parse().ok()
}

fn unescape(token: &str) -> std::borrow::Cow<'_, str> {
    if token.contains('~') {
        std::borrow::Cow::Owned(token.replace("~1", "/").replace("~0", "~"))
    } else {
        std::borrow::Cow::Borrowed(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vjson;

    fn sample() -> Value {
        vjson!({
            "a": {"b": [10, 20, {"c": "deep"}]},
            "x~y": 1,
            "p/q": 2,
            "": 3,
        })
    }

    #[test]
    fn empty_pointer_is_root() {
        let v = sample();
        assert_eq!(pointer(&v, ""), Some(&v));
    }

    #[test]
    fn object_and_array_traversal() {
        let v = sample();
        assert_eq!(pointer(&v, "/a/b/1").and_then(Value::as_i64), Some(20));
        assert_eq!(
            pointer(&v, "/a/b/2/c").and_then(Value::as_str),
            Some("deep")
        );
    }

    #[test]
    fn escapes() {
        let v = sample();
        assert_eq!(pointer(&v, "/x~0y").and_then(Value::as_i64), Some(1));
        assert_eq!(pointer(&v, "/p~1q").and_then(Value::as_i64), Some(2));
        assert_eq!(pointer(&v, "/").and_then(Value::as_i64), Some(3));
    }

    #[test]
    fn misses() {
        let v = sample();
        assert!(pointer(&v, "/nope").is_none());
        assert!(pointer(&v, "/a/b/9").is_none());
        assert!(pointer(&v, "/a/b/01").is_none());
        assert!(pointer(&v, "no-slash").is_none());
        assert!(pointer(&v, "/a/b/1/deeper").is_none());
    }

    #[test]
    fn pointer_mut_mutates() {
        let mut v = sample();
        *pointer_mut(&mut v, "/a/b/0").unwrap() = Value::from(99);
        assert_eq!(v["a"]["b"][0].as_i64(), Some(99));
    }

    #[test]
    fn set_creates_intermediates() {
        let mut v = Value::Null;
        assert!(set(&mut v, "/meta/owner/name", Value::from("hpcc")));
        assert_eq!(v["meta"]["owner"]["name"].as_str(), Some("hpcc"));
    }

    #[test]
    fn set_array_append_and_replace() {
        let mut v = vjson!({"arr": [1]});
        assert!(set(&mut v, "/arr/1", Value::from(2)));
        assert!(set(&mut v, "/arr/-", Value::from(3)));
        assert!(set(&mut v, "/arr/0", Value::from(0)));
        assert_eq!(v["arr"], vjson!([0, 2, 3]));
        assert!(!set(&mut v, "/arr/9", Value::from(9)));
    }

    #[test]
    fn set_root_replaces() {
        let mut v = vjson!({"a": 1});
        assert!(set(&mut v, "", Value::from(7)));
        assert_eq!(v.as_i64(), Some(7));
    }

    #[test]
    fn set_refuses_scalar_traversal() {
        let mut v = vjson!({"s": "str"});
        assert!(!set(&mut v, "/s/inner", Value::Null));
    }
}
