//! A YAML-subset parser for class definitions.
//!
//! The paper's Listing 1 defines OaaS classes in YAML. The offline crate
//! set has no YAML implementation, so this module parses the pragmatic
//! subset that configuration files actually use:
//!
//! - block mappings and block sequences with indentation scoping,
//!   including compact `- key: value` sequence entries;
//! - sequences indented at the *same* level as their parent key (the
//!   common `k8s` style) or deeper;
//! - plain scalars with the YAML 1.2 core schema (`null`/`~`, booleans,
//!   integers, floats) and single-/double-quoted strings (double quotes
//!   support JSON escapes);
//! - flow collections (`[a, b]`, `{k: v}`) nested arbitrarily;
//! - `#` comments and blank lines; an optional leading `---` document
//!   marker.
//!
//! Unsupported (rejected with a [`ParseError`]): anchors/aliases, tags,
//! multi-document streams, block scalars (`|`, `>`), and tab indentation.
//!
//! # Examples
//!
//! ```
//! use oprc_value::yaml;
//!
//! let v = yaml::parse("
//! classes:
//!   - name: Image
//!     qos:
//!       throughput: 100
//! ")?;
//! assert_eq!(v["classes"][0]["qos"]["throughput"].as_i64(), Some(100));
//! # Ok::<(), oprc_value::ParseError>(())
//! ```

use crate::{json, Map, Number, ParseError, Position, Value};

/// Parses a YAML document (subset; see module docs) into a [`Value`].
///
/// # Errors
///
/// Returns [`ParseError`] with a line/column position on malformed input
/// or on use of unsupported YAML features.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let lines = preprocess(input)?;
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut idx = 0;
    let v = parse_block(&lines, &mut idx, lines[0].indent)?;
    if idx < lines.len() {
        return Err(err_at(&lines[idx], 1, "content after end of document"));
    }
    Ok(v)
}

/// Serializes a value as block-style YAML.
///
/// The output round-trips through [`parse`]: keys and scalars that
/// would be misread as other types (numbers, booleans, `null`,
/// comment-introducing text) are quoted; empty containers use flow
/// form.
///
/// # Examples
///
/// ```
/// use oprc_value::{vjson, yaml};
///
/// let v = vjson!({"name": "Image", "qos": {"throughput": 100}});
/// let text = yaml::to_string(&v);
/// assert_eq!(yaml::parse(&text).unwrap(), v);
/// ```
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    match value {
        Value::Object(m) if !m.is_empty() => emit_mapping(m, 0, &mut out),
        Value::Array(a) if !a.is_empty() => emit_sequence(a, 0, &mut out),
        other => {
            emit_scalar(other, &mut out);
            out.push('\n');
        }
    }
    out
}

fn emit_mapping(m: &Map, indent: usize, out: &mut String) {
    for (k, v) in m {
        push_indent(indent, out);
        emit_key(k, out);
        emit_entry_value(v, indent, out);
    }
}

fn emit_sequence(a: &[Value], indent: usize, out: &mut String) {
    for v in a {
        push_indent(indent, out);
        out.push_str("- ");
        match v {
            Value::Object(m) if !m.is_empty() => {
                // Compact entry: first key on the dash line.
                let mut first = true;
                for (k, inner) in m {
                    if first {
                        first = false;
                    } else {
                        push_indent(indent + 1, out);
                    }
                    emit_key(k, out);
                    emit_entry_value(inner, indent + 1, out);
                }
            }
            Value::Array(inner) if !inner.is_empty() => {
                // Nested sequence: bare dash, children deeper.
                out.pop();
                out.pop();
                out.push_str("-\n");
                emit_sequence(inner, indent + 1, out);
            }
            other => {
                emit_scalar(other, out);
                out.push('\n');
            }
        }
    }
}

/// Emits the value part of `key:` — scalar inline, container nested.
fn emit_entry_value(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Object(m) if !m.is_empty() => {
            out.push('\n');
            emit_mapping(m, indent + 1, out);
        }
        Value::Array(a) if !a.is_empty() => {
            out.push('\n');
            emit_sequence(a, indent + 1, out);
        }
        other => {
            out.push(' ');
            emit_scalar(other, out);
            out.push('\n');
        }
    }
}

fn emit_key(k: &str, out: &mut String) {
    if needs_quoting(k) {
        out.push_str(&json_quote(k));
    } else {
        out.push_str(k);
    }
    out.push(':');
}

fn emit_scalar(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => {
            if needs_quoting(s) {
                out.push_str(&json_quote(s));
            } else {
                out.push_str(s);
            }
        }
        Value::Array(a) => {
            debug_assert!(a.is_empty(), "non-empty arrays handled by caller");
            out.push_str("[]");
        }
        Value::Object(m) => {
            debug_assert!(m.is_empty(), "non-empty objects handled by caller");
            out.push_str("{}");
        }
    }
}

/// True when a plain scalar would be misparsed (as another type, a
/// comment, flow syntax, …) and must be double-quoted.
fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Would resolve to a non-string under the core schema?
    if !matches!(core_schema_scalar(s), Value::String(_)) {
        return true;
    }
    let first = s.chars().next().expect("non-empty");
    if matches!(
        first,
        '-' | '?'
            | ':'
            | '#'
            | '&'
            | '*'
            | '!'
            | '|'
            | '>'
            | '%'
            | '@'
            | '`'
            | '"'
            | '\''
            | '['
            | ']'
            | '{'
            | '}'
            | ','
    ) {
        return true;
    }
    if s.starts_with(char::is_whitespace) || s.ends_with(char::is_whitespace) {
        return true;
    }
    if s.contains('\n') || s.contains('\t') {
        return true;
    }
    // ": " or trailing ":" makes it look like a mapping; " #" starts a
    // comment.
    if s.contains(": ") || s.ends_with(':') || s.contains(" #") {
        return true;
    }
    false
}

fn json_quote(s: &str) -> String {
    crate::json::to_string(&Value::String(s.to_string()))
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

#[derive(Debug)]
struct Line {
    number: usize,
    indent: usize,
    /// Content with indentation and trailing comment removed.
    text: String,
}

fn err_at(line: &Line, column: usize, msg: impl Into<String>) -> ParseError {
    ParseError::new(msg, Position::new(line.number, column))
}

fn preprocess(input: &str) -> Result<Vec<Line>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let number = i + 1;
        if raw.trim_start().starts_with('\t') || raw.starts_with('\t') {
            return Err(ParseError::new(
                "tab indentation is not supported",
                Position::new(number, 1),
            ));
        }
        let indent = raw.len() - raw.trim_start_matches(' ').len();
        let body = strip_comment(&raw[indent..]);
        let body = body.trim_end();
        if body.is_empty() {
            continue;
        }
        if number == 1 && body == "---" {
            continue;
        }
        if body.starts_with('&') || body.starts_with('*') || body.starts_with("!!") {
            return Err(ParseError::new(
                "anchors, aliases, and tags are not supported",
                Position::new(number, indent + 1),
            ));
        }
        out.push(Line {
            number,
            indent,
            text: body.to_string(),
        });
    }
    Ok(out)
}

/// Removes a trailing `#` comment, respecting quoted strings. A `#` only
/// starts a comment at the beginning of the content or after whitespace.
fn strip_comment(s: &str) -> &str {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => {
                if in_double && i > 0 && bytes[i - 1] == b'\\' {
                    // escaped quote inside double-quoted string
                } else {
                    in_double = !in_double;
                }
            }
            b'#' if !in_single && !in_double && (i == 0 || bytes[i - 1] == b' ') => {
                return &s[..i];
            }
            _ => {}
        }
        i += 1;
    }
    s
}

fn parse_block(lines: &[Line], idx: &mut usize, indent: usize) -> Result<Value, ParseError> {
    let line = &lines[*idx];
    if line.text == "-" || line.text.starts_with("- ") {
        parse_sequence(lines, idx, indent)
    } else if is_mapping_entry(&line.text) {
        parse_mapping(lines, idx, indent)
    } else {
        // Root-level plain scalar document.
        let v = parse_scalar_or_flow(&line.text, line)?;
        *idx += 1;
        Ok(v)
    }
}

fn parse_sequence(lines: &[Line], idx: &mut usize, indent: usize) -> Result<Value, ParseError> {
    let mut items = Vec::new();
    while *idx < lines.len() {
        let line = &lines[*idx];
        if line.indent != indent || !(line.text == "-" || line.text.starts_with("- ")) {
            break;
        }
        if line.text == "-" {
            // Item is a nested block on following lines.
            *idx += 1;
            if *idx < lines.len() && lines[*idx].indent > indent {
                let child_indent = lines[*idx].indent;
                items.push(parse_block(lines, idx, child_indent)?);
            } else {
                items.push(Value::Null);
            }
        } else {
            let rest = line.text[2..].trim_start();
            let extra = line.text.len() - rest.len(); // offset of content after "- "
            if is_mapping_entry(rest) {
                // Compact mapping entry: first key on the dash line,
                // continuation keys indented to the key column.
                let key_indent = indent + extra;
                items.push(parse_compact_mapping(lines, idx, key_indent, rest)?);
            } else {
                items.push(parse_scalar_or_flow(rest, line)?);
                *idx += 1;
            }
        }
    }
    Ok(Value::Array(items))
}

/// Parses a mapping whose first entry text is embedded in a `- ` sequence
/// line. `key_indent` is the column of the first key.
fn parse_compact_mapping(
    lines: &[Line],
    idx: &mut usize,
    key_indent: usize,
    first_entry: &str,
) -> Result<Value, ParseError> {
    let mut map = Map::new();
    let first_line_no = lines[*idx].number;
    insert_entry(&mut map, lines, idx, key_indent, first_entry)?;
    while *idx < lines.len() {
        let line = &lines[*idx];
        if line.indent != key_indent || line.number == first_line_no {
            break;
        }
        if line.text == "-" || line.text.starts_with("- ") {
            break;
        }
        if !is_mapping_entry(&line.text) {
            return Err(err_at(line, line.indent + 1, "expected mapping entry"));
        }
        let text = line.text.clone();
        insert_entry(&mut map, lines, idx, key_indent, &text)?;
    }
    Ok(Value::Object(map))
}

fn parse_mapping(lines: &[Line], idx: &mut usize, indent: usize) -> Result<Value, ParseError> {
    let mut map = Map::new();
    while *idx < lines.len() {
        let line = &lines[*idx];
        if line.indent != indent {
            break;
        }
        if line.text == "-" || line.text.starts_with("- ") {
            break;
        }
        if !is_mapping_entry(&line.text) {
            return Err(err_at(line, line.indent + 1, "expected 'key: value'"));
        }
        let text = line.text.clone();
        insert_entry(&mut map, lines, idx, indent, &text)?;
    }
    Ok(Value::Object(map))
}

/// Parses one `key: ...` entry starting at `lines[*idx]` (whose content is
/// `entry`), advancing `idx` past the entry and any nested block.
fn insert_entry(
    map: &mut Map,
    lines: &[Line],
    idx: &mut usize,
    indent: usize,
    entry: &str,
) -> Result<(), ParseError> {
    let line_no = *idx;
    let (key_raw, rest) = split_key_raw(entry).ok_or_else(|| {
        err_at(
            &lines[line_no],
            lines[line_no].indent + 1,
            "expected 'key: value'",
        )
    })?;
    let key = unquote_key(key_raw, &lines[line_no])?;
    if map.contains_key(&key) {
        return Err(err_at(
            &lines[line_no],
            lines[line_no].indent + 1,
            format!("duplicate mapping key '{key}'"),
        ));
    }
    *idx += 1;
    let value = if rest.is_empty() {
        // Nested block: deeper-indented block, or a sequence at the same
        // indent, or null when nothing follows.
        if *idx < lines.len() && lines[*idx].indent > indent {
            let child_indent = lines[*idx].indent;
            parse_block(lines, idx, child_indent)?
        } else if *idx < lines.len()
            && lines[*idx].indent == indent
            && (lines[*idx].text == "-" || lines[*idx].text.starts_with("- "))
        {
            parse_sequence(lines, idx, indent)?
        } else {
            Value::Null
        }
    } else {
        parse_scalar_or_flow(rest, &lines[line_no])?
    };
    map.insert(key, value);
    Ok(())
}

/// True if the content line looks like a mapping entry (`key:` or
/// `key: value`), respecting quoting of the key.
fn is_mapping_entry(text: &str) -> bool {
    split_key_raw(text).is_some()
}

/// Splits `key: rest`; returns `(key_text, rest)` without unquoting.
fn split_key_raw(text: &str) -> Option<(&str, &str)> {
    let bytes = text.as_bytes();
    if bytes.is_empty() {
        return None;
    }
    // Quoted key.
    if bytes[0] == b'"' || bytes[0] == b'\'' {
        let quote = bytes[0];
        let mut i = 1;
        while i < bytes.len() {
            if bytes[i] == quote && !(quote == b'"' && bytes[i - 1] == b'\\') {
                break;
            }
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        let after = &text[i + 1..];
        let after_trim = after.trim_start();
        if let Some(rest) = after_trim.strip_prefix(':') {
            if rest.is_empty() || rest.starts_with(' ') {
                return Some((&text[..i + 1], rest.trim_start()));
            }
        }
        return None;
    }
    // Plain key: find a ':' that is followed by space/EOL and not inside
    // flow brackets.
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth = depth.saturating_sub(1),
            b':' if depth == 0 => {
                let rest = &text[i + 1..];
                if rest.is_empty() {
                    return Some((&text[..i], ""));
                }
                if rest.starts_with(' ') {
                    return Some((&text[..i], rest.trim_start()));
                }
            }
            _ => {}
        }
    }
    None
}

fn unquote_key(k: &str, line: &Line) -> Result<String, ParseError> {
    let k = k.trim();
    if k.starts_with('"') {
        let v = json::parse(k)
            .map_err(|e| err_at(line, line.indent + 1, format!("bad key: {}", e.message())))?;
        Ok(v.as_str().unwrap_or_default().to_string())
    } else if k.starts_with('\'') && k.ends_with('\'') && k.len() >= 2 {
        Ok(k[1..k.len() - 1].replace("''", "'"))
    } else {
        Ok(k.to_string())
    }
}

/// Parses a scalar or flow-collection value occurring after `key: `.
fn parse_scalar_or_flow(text: &str, line: &Line) -> Result<Value, ParseError> {
    let text = text.trim();
    if text.starts_with('[') || text.starts_with('{') {
        let mut p = FlowParser {
            bytes: text.as_bytes(),
            pos: 0,
            line,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != text.len() {
            return Err(err_at(
                line,
                line.indent + p.pos + 1,
                "trailing flow content",
            ));
        }
        return Ok(v);
    }
    plain_scalar(text, line)
}

fn plain_scalar(text: &str, line: &Line) -> Result<Value, ParseError> {
    let t = text.trim();
    if t.starts_with('"') {
        let v = json::parse(t).map_err(|e| {
            err_at(
                line,
                line.indent + 1,
                format!("bad string: {}", e.message()),
            )
        })?;
        return Ok(v);
    }
    if t.starts_with('\'') {
        if t.len() < 2 || !t.ends_with('\'') {
            return Err(err_at(
                line,
                line.indent + 1,
                "unterminated single-quoted string",
            ));
        }
        return Ok(Value::String(t[1..t.len() - 1].replace("''", "'")));
    }
    if t.starts_with('|') || t.starts_with('>') {
        return Err(err_at(
            line,
            line.indent + 1,
            "block scalars are not supported",
        ));
    }
    Ok(core_schema_scalar(t))
}

/// YAML 1.2 core-schema resolution for plain scalars.
fn core_schema_scalar(t: &str) -> Value {
    match t {
        "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Number(Number::Int(i));
    }
    if let Some(hex) = t.strip_prefix("0x") {
        if let Ok(i) = i64::from_str_radix(hex, 16) {
            return Value::Number(Number::Int(i));
        }
    }
    if t.chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.')
        && !t.ends_with(':')
    {
        if let Ok(f) = t.parse::<f64>() {
            return Value::Number(Number::from(f));
        }
    }
    match t {
        ".inf" | ".Inf" | "+.inf" => Value::Number(Number::from(f64::INFINITY)),
        "-.inf" | "-.Inf" => Value::Number(Number::from(f64::NEG_INFINITY)),
        _ => Value::String(t.to_string()),
    }
}

struct FlowParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: &'a Line,
}

impl FlowParser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        err_at(self.line, self.line.indent + self.pos + 1, msg)
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos) == Some(&b' ') {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'"') | Some(b'\'') => {
                let (start, end) = self.quoted()?;
                let text = std::str::from_utf8(&self.bytes[start..end])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                plain_scalar(text, self.line)
            }
            Some(_) => {
                let start = self.pos;
                while let Some(&b) = self.bytes.get(self.pos) {
                    if b == b',' || b == b']' || b == b'}' || b == b':' {
                        break;
                    }
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                Ok(core_schema_scalar(text.trim()))
            }
            None => Err(self.err("unexpected end of flow value")),
        }
    }

    /// Consumes a quoted token, returning its byte range (inclusive of
    /// quotes).
    fn quoted(&mut self) -> Result<(usize, usize), ParseError> {
        let quote = self.bytes[self.pos];
        let start = self.pos;
        self.pos += 1;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == quote && !(quote == b'"' && self.bytes[self.pos - 1] == b'\\') {
                self.pos += 1;
                return Ok((start, self.pos));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated quoted string"))
    }

    fn seq(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in flow sequence")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // {
        let mut map = Map::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = match self.bytes.get(self.pos) {
                Some(b'"') | Some(b'\'') => {
                    let (start, end) = self.quoted()?;
                    let text = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    match plain_scalar(text, self.line)? {
                        Value::String(s) => s,
                        other => other.to_string(),
                    }
                }
                _ => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b':' || b == b',' || b == b'}' {
                            break;
                        }
                        self.pos += 1;
                    }
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .trim()
                        .to_string()
                }
            };
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':' in flow mapping"));
            }
            self.pos += 1;
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in flow mapping")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vjson;

    #[test]
    fn listing1_class_definition() {
        // The paper's Listing 1 (cleaned of OCR noise).
        let text = r#"
classes:
  - name: Image
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs:
      - name: image  # File Image
    functions:
      - name: resize
        image: img/resize   # container image
      - name: changeFormat
        image: img/change-format
  - name: LabelledImage
    parent: Image
    functions:
      - name: detectObject
        image: img/detect-object
"#;
        let v = parse(text).unwrap();
        let classes = v["classes"].as_array().unwrap();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0]["name"].as_str(), Some("Image"));
        assert_eq!(classes[0]["qos"]["throughput"].as_i64(), Some(100));
        assert_eq!(classes[0]["constraint"]["persistent"].as_bool(), Some(true));
        assert_eq!(classes[0]["keySpecs"][0]["name"].as_str(), Some("image"));
        assert_eq!(classes[0]["functions"].len(), 2);
        assert_eq!(
            classes[0]["functions"][1]["image"].as_str(),
            Some("img/change-format")
        );
        assert_eq!(classes[1]["parent"].as_str(), Some("Image"));
        assert_eq!(
            classes[1]["functions"][0]["name"].as_str(),
            Some("detectObject")
        );
    }

    #[test]
    fn same_indent_sequence() {
        let v = parse("functions:\n- a\n- b\n").unwrap();
        assert_eq!(v["functions"], vjson!(["a", "b"]));
    }

    #[test]
    fn scalars_core_schema() {
        let v =
            parse("a: 1\nb: -2.5\nc: true\nd: False\ne: null\nf: ~\ng:\nh: plain text\ni: 0x1f\n")
                .unwrap();
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"].as_f64(), Some(-2.5));
        assert_eq!(v["c"].as_bool(), Some(true));
        assert_eq!(v["d"].as_bool(), Some(false));
        assert!(v["e"].is_null());
        assert!(v["f"].is_null());
        assert!(v["g"].is_null());
        assert_eq!(v["h"].as_str(), Some("plain text"));
        assert_eq!(v["i"].as_i64(), Some(31));
    }

    #[test]
    fn quoted_strings() {
        let v = parse("a: \"with: colon\"\nb: 'single ''quoted'''\nc: \"esc\\n\"\n").unwrap();
        assert_eq!(v["a"].as_str(), Some("with: colon"));
        assert_eq!(v["b"].as_str(), Some("single 'quoted'"));
        assert_eq!(v["c"].as_str(), Some("esc\n"));
    }

    #[test]
    fn flow_collections() {
        let v = parse("a: [1, two, [3, 4], {k: v}]\nb: {x: 1, y: [true]}\nc: []\nd: {}\n").unwrap();
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][1].as_str(), Some("two"));
        assert_eq!(v["a"][2][1].as_i64(), Some(4));
        assert_eq!(v["a"][3]["k"].as_str(), Some("v"));
        assert_eq!(v["b"]["y"][0].as_bool(), Some(true));
        assert_eq!(v["c"], Value::array());
        assert_eq!(v["d"], Value::object());
    }

    #[test]
    fn nested_sequences_with_bare_dash() {
        let v = parse("matrix:\n  -\n    - 1\n    - 2\n  -\n    - 3\n").unwrap();
        assert_eq!(v["matrix"], vjson!([[1, 2], [3]]));
    }

    #[test]
    fn comments_and_blanks() {
        let v = parse("# header\n\na: 1 # trailing\n\n# middle\nb: 2\n").unwrap();
        assert_eq!(v, vjson!({"a": 1, "b": 2}));
    }

    #[test]
    fn hash_inside_string_not_comment() {
        let v = parse("a: \"x # y\"\nb: c#d\n").unwrap();
        assert_eq!(v["a"].as_str(), Some("x # y"));
        assert_eq!(v["b"].as_str(), Some("c#d"));
    }

    #[test]
    fn document_marker() {
        let v = parse("---\na: 1\n").unwrap();
        assert_eq!(v["a"].as_i64(), Some(1));
    }

    #[test]
    fn empty_document_is_null() {
        assert!(parse("").unwrap().is_null());
        assert!(parse("\n# only comments\n").unwrap().is_null());
    }

    #[test]
    fn rejects_tabs_and_anchors() {
        assert!(parse("a:\n\tb: 1\n").is_err());
        // Value-position anchors are not interpreted; the text stays a string.
        assert_eq!(
            parse("a: &anchor 1\n").unwrap()["a"].as_str(),
            Some("&anchor 1")
        );
        assert!(parse("&anchor\na: 1\n").is_err());
        assert!(parse("!!str hello\n").is_err());
    }

    #[test]
    fn rejects_block_scalars() {
        assert!(parse("a: |\n  text\n").is_err());
        assert!(parse("a: >\n  text\n").is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(parse("a: 1\na: 2\n").is_err());
    }

    #[test]
    fn error_has_line_number() {
        let err = parse("a: 1\n  bogus line without colon\n").unwrap_err();
        assert_eq!(err.position().line, 2);
    }

    #[test]
    fn deep_nesting_round_trip_against_json() {
        let yaml_text = r#"
deploy:
  replicas: 3
  resources:
    limits:
      cpu: 2
      memory: 4096
  regions:
    - name: us-east
      zones: [a, b]
    - name: eu-west
      zones: [c]
"#;
        let json_text = r#"{
            "deploy": {
                "replicas": 3,
                "resources": {"limits": {"cpu": 2, "memory": 4096}},
                "regions": [
                    {"name": "us-east", "zones": ["a", "b"]},
                    {"name": "eu-west", "zones": ["c"]}
                ]
            }
        }"#;
        assert_eq!(parse(yaml_text).unwrap(), json::parse(json_text).unwrap());
    }

    #[test]
    fn sequence_of_scalars_at_root() {
        let v = parse("- 1\n- 2\n- three\n").unwrap();
        assert_eq!(v, vjson!([1, 2, "three"]));
    }

    #[test]
    fn compact_entry_key_column_scoping() {
        // Continuation keys must align with the first key after the dash.
        let v = parse("items:\n  - name: a\n    size: 1\n  - name: b\n    size: 2\n").unwrap();
        assert_eq!(v["items"].len(), 2);
        assert_eq!(v["items"][1]["size"].as_i64(), Some(2));
    }
}
