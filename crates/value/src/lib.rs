//! Dynamic value model and text formats for the Oparaca / OaaS reproduction.
//!
//! This crate provides the data plumbing that the rest of the workspace is
//! built on:
//!
//! - [`Value`]: a JSON-like dynamic value (`null`, booleans, numbers,
//!   strings, arrays, objects) used for object state, invocation payloads,
//!   and class definitions.
//! - [`json`]: a JSON parser ([`json::parse`]) and emitter
//!   ([`json::to_string`], [`json::to_string_pretty`]).
//! - [`yaml`]: a YAML-subset parser ([`yaml::parse`]) sufficient for the
//!   class-definition format used in the paper's Listing 1 (block mappings,
//!   block sequences, scalars, comments, nested structures).
//! - [`Snapshot`]: an `Arc`-backed copy-on-write handle to a [`Value`],
//!   used to ship object-state snapshots across retries, replicas, and
//!   parallel dataflow stages without deep clones.
//! - [`path`]: JSON-pointer-style access into nested values.
//! - [`merge`]: deep merge used when applying state deltas.
//!
//! No external parsing crates are used; the offline dependency set does not
//! include `serde_json`/`serde_yaml`, so this crate implements the formats
//! from scratch (see `DESIGN.md` §2).
//!
//! # Examples
//!
//! ```
//! use oprc_value::{json, Value};
//!
//! let v = json::parse(r#"{"name": "Image", "qos": {"throughput": 100}}"#)?;
//! assert_eq!(v.pointer("/qos/throughput").and_then(Value::as_i64), Some(100));
//! # Ok::<(), oprc_value::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod number;
mod snapshot;
mod value;

pub mod json;
pub mod merge;
pub mod path;
pub mod yaml;

pub use error::{ParseError, Position};
pub use number::Number;
pub use snapshot::Snapshot;
pub use value::{Map, Value};

/// Constructs a [`Value`] from a JSON-like literal.
///
/// This is a small convenience macro for tests, examples, and fixtures.
/// Values inside objects and arrays are single token trees: literals,
/// nested `{...}`/`[...]`, or parenthesized expressions. Multi-token
/// expressions — including negative numbers — must be parenthesized:
/// `vjson!({"x": (-3)})`.
///
/// # Examples
///
/// ```
/// use oprc_value::vjson;
///
/// let v = vjson!({
///     "name": "Image",
///     "replicas": 3,
///     "tags": ["multimedia", true, null],
/// });
/// assert_eq!(v["replicas"].as_i64(), Some(3));
/// ```
#[macro_export]
macro_rules! vjson {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::vjson!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(::std::string::String::from($key), $crate::vjson!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}
