//! Parse errors shared by the JSON and YAML parsers.

use std::error::Error;
use std::fmt;

/// A line/column position within parsed text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl Position {
    /// Creates a position at the given 1-based line and column.
    pub fn new(line: usize, column: usize) -> Self {
        Position { line, column }
    }
}

impl Default for Position {
    fn default() -> Self {
        Position { line: 1, column: 1 }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Error returned when parsing JSON or YAML text fails.
///
/// Carries a human-readable message and the [`Position`] where the problem
/// was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    position: Position,
}

impl ParseError {
    /// Creates a new parse error at `position`.
    pub fn new(message: impl Into<String>, position: Position) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }

    /// The human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the input the error was detected.
    pub fn position(&self) -> Position {
        self.position
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.position)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = ParseError::new("unexpected token", Position::new(3, 14));
        assert_eq!(err.to_string(), "unexpected token at line 3, column 14");
    }

    #[test]
    fn accessors_round_trip() {
        let err = ParseError::new("boom", Position::new(2, 5));
        assert_eq!(err.message(), "boom");
        assert_eq!(err.position(), Position::new(2, 5));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
