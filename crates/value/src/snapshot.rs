//! Copy-on-write state snapshots.
//!
//! [`Snapshot`] wraps a [`Value`] in an [`Arc`] so a state snapshot can
//! be shared — across retry attempts of an [`InvocationTask`], between
//! the DHT's replica partitions, through the write-behind buffer, and
//! into parallel dataflow stages — for the cost of a refcount bump
//! instead of a deep clone. Mutation goes through [`Snapshot::make_mut`]
//! (clone-on-write via [`Arc::make_mut`]), so holders of other handles
//! never observe the change: a snapshot is observationally identical to
//! a deep clone, just cheaper while nobody writes.
//!
//! [`InvocationTask`]: https://docs.rs/oprc-core
//!
//! # Examples
//!
//! ```
//! use oprc_value::{vjson, Snapshot, Value};
//!
//! let a = Snapshot::from(vjson!({"count": 1}));
//! let b = a.clone(); // refcount bump, no deep clone
//! assert!(Snapshot::ptr_eq(&a, &b));
//!
//! let mut c = b.clone();
//! c.make_mut().insert("count", 2); // detaches c; a and b untouched
//! assert_eq!(a["count"].as_i64(), Some(1));
//! assert_eq!(c["count"].as_i64(), Some(2));
//! ```

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::Value;

/// A shared, copy-on-write handle to a [`Value`].
///
/// Cloning is a refcount bump. Reads go through [`Deref`], so indexing
/// and all `&self` methods of [`Value`] work directly on a snapshot.
/// Writes go through [`Snapshot::make_mut`], which clones the inner
/// value first if (and only if) other handles still share it.
#[derive(Clone, Default)]
pub struct Snapshot(Arc<Value>);

impl Snapshot {
    /// Wraps a value in a new snapshot.
    #[must_use]
    pub fn new(value: Value) -> Self {
        Snapshot(Arc::new(value))
    }

    /// An empty-object snapshot, the initial state of a fresh object.
    #[must_use]
    pub fn object() -> Self {
        Snapshot::new(Value::object())
    }

    /// Mutable access to the inner value, cloning it first if other
    /// handles share it. This is the *only* write path: every other
    /// holder keeps observing the pre-mutation value.
    pub fn make_mut(&mut self) -> &mut Value {
        Arc::make_mut(&mut self.0)
    }

    /// Extracts the inner value — zero-copy when this is the last
    /// handle, a deep clone otherwise.
    #[must_use]
    pub fn into_value(self) -> Value {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Borrows the inner value explicitly (equivalent to deref).
    #[must_use]
    pub fn value(&self) -> &Value {
        &self.0
    }

    /// Whether two snapshots share the same allocation (i.e. cloning one
    /// from the other cost a refcount bump, not a deep clone).
    #[must_use]
    pub fn ptr_eq(a: &Snapshot, b: &Snapshot) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// The number of live handles to this snapshot's allocation.
    #[must_use]
    pub fn ref_count(this: &Snapshot) -> usize {
        Arc::strong_count(&this.0)
    }
}

impl Deref for Snapshot {
    type Target = Value;

    fn deref(&self) -> &Value {
        &self.0
    }
}

impl From<Value> for Snapshot {
    fn from(value: Value) -> Self {
        Snapshot::new(value)
    }
}

impl From<Snapshot> for Value {
    fn from(snapshot: Snapshot) -> Self {
        snapshot.into_value()
    }
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        Snapshot::ptr_eq(self, other) || *self.0 == *other.0
    }
}

impl Eq for Snapshot {}

impl PartialEq<Value> for Snapshot {
    fn eq(&self, other: &Value) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<Snapshot> for Value {
    fn eq(&self, other: &Snapshot) -> bool {
        *self == *other.0
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vjson;

    #[test]
    fn clone_is_shared_until_written() {
        let a = Snapshot::from(vjson!({"k": [1, 2, 3]}));
        let b = a.clone();
        assert!(Snapshot::ptr_eq(&a, &b));
        assert_eq!(Snapshot::ref_count(&a), 2);

        let mut c = b.clone();
        c.make_mut().insert("k", vjson!([4]));
        assert!(!Snapshot::ptr_eq(&a, &c));
        assert_eq!(a["k"][0].as_i64(), Some(1));
        assert_eq!(c["k"][0].as_i64(), Some(4));
        // a and b still share their allocation.
        assert!(Snapshot::ptr_eq(&a, &b));
    }

    #[test]
    fn make_mut_on_unique_handle_does_not_clone() {
        let mut a = Snapshot::from(vjson!({"n": 0}));
        let before = std::ptr::from_ref::<Value>(a.value());
        a.make_mut().insert("n", 1);
        assert!(std::ptr::eq(before, a.value()));
    }

    #[test]
    fn into_value_is_zero_copy_when_unique() {
        let v = vjson!({"deep": {"nested": true}});
        let snap = Snapshot::from(v.clone());
        assert_eq!(snap.into_value(), v);

        let shared = Snapshot::from(v.clone());
        let keep = shared.clone();
        assert_eq!(shared.into_value(), v); // forced clone; keep survives
        assert_eq!(keep, v);
    }

    #[test]
    fn equality_and_display_delegate_to_value() {
        let snap = Snapshot::from(vjson!({"a": 1}));
        assert_eq!(snap, vjson!({"a": 1}));
        assert_eq!(vjson!({"a": 1}), snap);
        assert_eq!(snap.to_string(), vjson!({"a": 1}).to_string());
        assert_eq!(Snapshot::default(), Value::Null);
    }
}
