//! The dynamic [`Value`] type.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

use crate::Number;

/// The map type used for JSON objects.
///
/// A [`BTreeMap`] keeps key order deterministic, which matters for
/// reproducible experiment output and stable golden tests.
pub type Map = BTreeMap<String, Value>;

/// A JSON-like dynamic value.
///
/// `Value` is used throughout the workspace for object state, invocation
/// payloads, and parsed class definitions. It is deliberately close to
/// `serde_json::Value`, which is not available in the offline dependency
/// set.
///
/// # Examples
///
/// ```
/// use oprc_value::{Value, vjson};
///
/// let v = vjson!({"width": 1920, "tags": ["raw"]});
/// assert!(v.is_object());
/// assert_eq!(v["width"].as_i64(), Some(1920));
/// assert_eq!(v["tags"][0].as_str(), Some("raw"));
/// assert!(v["missing"].is_null());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic key order.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Creates an empty object value.
    pub fn object() -> Self {
        Value::Object(Map::new())
    }

    /// Creates an empty array value.
    pub fn array() -> Self {
        Value::Array(Vec::new())
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True if the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True if the value is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True if the value is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Returns the boolean if the value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the string slice if the value is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array slice if the value is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns a mutable array reference if the value is an `Array`.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object map if the value is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns a mutable object reference if the value is an `Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in an object, returning `None` for non-objects and
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable variant of [`Value::get`].
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }

    /// Looks up an array element by index.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(index))
    }

    /// Inserts `key = value` into an object value.
    ///
    /// Returns the previous value for the key, if any. If `self` is `Null`
    /// it is first promoted to an empty object, matching the common
    /// "state starts empty" pattern in object runtimes.
    ///
    /// # Panics
    ///
    /// Panics if `self` is a non-object, non-null value.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        if self.is_null() {
            *self = Value::object();
        }
        match self {
            Value::Object(m) => m.insert(key.into(), value.into()),
            other => panic!("cannot insert into non-object value: {other:?}"),
        }
    }

    /// Removes `key` from an object value, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.as_object_mut().and_then(|m| m.remove(key))
    }

    /// Number of elements in an array or entries in an object; `0`
    /// otherwise.
    pub fn len(&self) -> usize {
        match self {
            Value::Array(a) => a.len(),
            Value::Object(m) => m.len(),
            _ => 0,
        }
    }

    /// True if [`Value::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a JSON-pointer-like path (`/a/b/0`). See [`crate::path`].
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        crate::path::pointer(self, pointer)
    }

    /// Mutable variant of [`Value::pointer`].
    pub fn pointer_mut(&mut self, pointer: &str) -> Option<&mut Value> {
        crate::path::pointer_mut(self, pointer)
    }

    /// Approximate in-memory/serialized size in bytes.
    ///
    /// Used by the storage substrates to account for record sizes without
    /// serializing. The estimate is the compact-JSON length to within a few
    /// bytes per token.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 4,
            Value::Bool(true) => 4,
            Value::Bool(false) => 5,
            Value::Number(n) => n.to_string().len(),
            Value::String(s) => s.len() + 2,
            Value::Array(a) => 2 + a.iter().map(|v| v.approx_size() + 1).sum::<usize>(),
            Value::Object(m) => {
                2 + m
                    .iter()
                    .map(|(k, v)| k.len() + 4 + v.approx_size())
                    .sum::<usize>()
            }
        }
    }

    /// Type name for error messages (`"null"`, `"object"`, ...).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Takes the value, leaving `Null` behind.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

impl fmt::Display for Value {
    /// Formats the value as compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Indexes into an object; missing keys and non-objects yield `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Indexes into an array; out-of-range and non-arrays yield `Null`.
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Number> for Value {
    fn from(v: Number) -> Self {
        Value::Number(v)
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::from(v)) }
        }
    )*};
}
from_num!(i32, i64, u32, u64, usize, f32, f64);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

impl<V: Into<Value>> FromIterator<(String, V)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, V)>>(iter: I) -> Self {
        Value::Object(iter.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vjson;

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    fn index_missing_is_null() {
        let v = vjson!({"a": 1});
        assert!(v["b"].is_null());
        assert!(v["a"]["nested"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn insert_promotes_null_to_object() {
        let mut v = Value::Null;
        v.insert("x", 10);
        assert_eq!(v["x"].as_i64(), Some(10));
    }

    #[test]
    #[should_panic(expected = "cannot insert into non-object")]
    fn insert_into_array_panics() {
        let mut v = Value::array();
        v.insert("x", 1);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3_i64).as_i64(), Some(3));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(vec![1, 2]).len(), 2);
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(5)).as_i64(), Some(5));
    }

    #[test]
    fn collect_object_and_array() {
        let arr: Value = (0..3).collect();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        let obj: Value = vec![("a".to_string(), 1), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(obj["b"].as_i64(), Some(2));
    }

    #[test]
    fn approx_size_tracks_compact_json() {
        let v = vjson!({"key": "value", "n": 12, "arr": [1, 2, 3], "b": true});
        let exact = crate::json::to_string(&v).len();
        let approx = v.approx_size();
        assert!(
            (approx as i64 - exact as i64).abs() <= exact as i64 / 4 + 8,
            "approx {approx} too far from exact {exact}"
        );
    }

    #[test]
    fn take_leaves_null() {
        let mut v = vjson!({"a": 1});
        let taken = v.take();
        assert!(v.is_null());
        assert_eq!(taken["a"].as_i64(), Some(1));
    }

    #[test]
    fn remove_and_len() {
        let mut v = vjson!({"a": 1, "b": 2});
        assert_eq!(v.len(), 2);
        assert_eq!(v.remove("a").and_then(|x| x.as_i64()), Some(1));
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(vjson!([1]).type_name(), "array");
        assert_eq!(vjson!({}).type_name(), "object");
    }
}
