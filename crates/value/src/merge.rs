//! Deep merging of values.
//!
//! The object runtime applies function-produced state deltas to stored
//! object state with [`deep_merge`]: objects merge recursively, everything
//! else (arrays included) is replaced wholesale, and explicit `null` in the
//! patch deletes the key — the same semantics as RFC 7396 JSON Merge Patch.

use crate::Value;

/// Merges `patch` into `base` using JSON-Merge-Patch (RFC 7396) semantics.
///
/// - object ⊕ object: merge keys recursively;
/// - `null` in the patch deletes the key from the base object;
/// - any other combination: the patch value replaces the base value.
///
/// # Examples
///
/// ```
/// use oprc_value::{merge::deep_merge, vjson};
///
/// let mut state = vjson!({"width": 100, "meta": {"a": 1, "b": 2}});
/// deep_merge(&mut state, vjson!({"meta": {"b": null, "c": 3}}));
/// assert_eq!(state, vjson!({"width": 100, "meta": {"a": 1, "c": 3}}));
/// ```
pub fn deep_merge(base: &mut Value, patch: Value) {
    match (base, patch) {
        (Value::Object(base_map), Value::Object(patch_map)) => {
            for (k, v) in patch_map {
                if v.is_null() {
                    base_map.remove(&k);
                } else {
                    deep_merge(base_map.entry(k).or_insert(Value::Null), v);
                }
            }
        }
        (slot, v) => *slot = v,
    }
}

/// Removes explicit `null` members from objects, recursively.
///
/// Merge-patch semantics cannot distinguish "member is null" from "member
/// is absent" (RFC 7396 §3), so object state handled by the platform is
/// kept *normalized*: a member holding `null` is equivalent to the member
/// being absent. `null` elements inside arrays are preserved — arrays are
/// replaced wholesale by patches, so they round-trip fine.
///
/// # Examples
///
/// ```
/// use oprc_value::{merge::normalize, vjson};
///
/// let mut v = vjson!({"a": null, "b": {"c": null, "d": 1}, "e": [null]});
/// normalize(&mut v);
/// assert_eq!(v, vjson!({"b": {"d": 1}, "e": [null]}));
/// ```
pub fn normalize(value: &mut Value) {
    match value {
        Value::Object(m) => {
            m.retain(|_, v| !v.is_null());
            for v in m.values_mut() {
                normalize(v);
            }
        }
        Value::Array(a) => {
            for v in a.iter_mut() {
                normalize(v);
            }
        }
        _ => {}
    }
}

/// Computes a minimal merge patch that transforms `from` into `to`.
///
/// The returned patch, applied to `from` with [`deep_merge`], yields `to`
/// — provided `to` is [`normalize`]d (no explicit `null` object members,
/// which merge-patch cannot express; see RFC 7396 §3). Keys present in
/// `from` but absent in `to` appear as `null` (deletions). Returns `None`
/// when the values are already equal (empty patch).
///
/// This is how the platform ships *state deltas* rather than full state
/// between the function runtime and the storage layer, which is what makes
/// the write-behind batching in `oprc-store` cheap.
pub fn diff(from: &Value, to: &Value) -> Option<Value> {
    if from == to {
        return None;
    }
    match (from, to) {
        (Value::Object(a), Value::Object(b)) => {
            let mut patch = crate::Map::new();
            for (k, av) in a {
                match b.get(k) {
                    None => {
                        patch.insert(k.clone(), Value::Null);
                    }
                    Some(bv) => {
                        if let Some(sub) = diff(av, bv) {
                            patch.insert(k.clone(), sub);
                        }
                    }
                }
            }
            for (k, bv) in b {
                if !a.contains_key(k) {
                    patch.insert(k.clone(), bv.clone());
                }
            }
            Some(Value::Object(patch))
        }
        (_, b) => Some(b.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vjson;

    #[test]
    fn scalar_replacement() {
        let mut v = vjson!(1);
        deep_merge(&mut v, vjson!("x"));
        assert_eq!(v.as_str(), Some("x"));
    }

    #[test]
    fn arrays_replace_not_merge() {
        let mut v = vjson!({"a": [1, 2, 3]});
        deep_merge(&mut v, vjson!({"a": [9]}));
        assert_eq!(v["a"], vjson!([9]));
    }

    #[test]
    fn null_deletes() {
        let mut v = vjson!({"a": 1, "b": 2});
        deep_merge(&mut v, vjson!({"a": null}));
        assert_eq!(v, vjson!({"b": 2}));
    }

    #[test]
    fn nested_merge() {
        let mut v = vjson!({"o": {"x": 1, "y": {"z": 2}}});
        deep_merge(&mut v, vjson!({"o": {"y": {"w": 3}}}));
        assert_eq!(v, vjson!({"o": {"x": 1, "y": {"z": 2, "w": 3}}}));
    }

    #[test]
    fn merge_into_non_object_replaces() {
        let mut v = vjson!({"o": 5});
        deep_merge(&mut v, vjson!({"o": {"k": 1}}));
        assert_eq!(v["o"]["k"].as_i64(), Some(1));
    }

    #[test]
    fn diff_identity_is_none() {
        let v = vjson!({"a": [1, {"b": 2}]});
        assert!(diff(&v, &v).is_none());
    }

    #[test]
    fn diff_then_merge_round_trips() {
        let cases = [
            (
                vjson!({"a": 1, "b": {"c": 2}}),
                vjson!({"b": {"c": 3}, "d": 4}),
            ),
            (vjson!({"x": [1, 2]}), vjson!({"x": [2, 1]})),
            (vjson!(1), vjson!({"k": true})),
            (vjson!({"only": "from"}), vjson!({})),
        ];
        for (from, to) in cases {
            let patch = diff(&from, &to).expect("values differ");
            let mut applied = from.clone();
            deep_merge(&mut applied, patch);
            assert_eq!(applied, to, "from={from} to={to}");
        }
    }

    #[test]
    fn diff_reports_deletion_as_null() {
        let patch = diff(&vjson!({"a": 1, "b": 2}), &vjson!({"b": 2})).unwrap();
        assert_eq!(patch, vjson!({"a": null}));
    }
}
