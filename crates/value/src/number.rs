//! Numeric representation used by [`crate::Value`].

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A JSON number: either a 64-bit signed integer or a 64-bit float.
///
/// Integers that fit in `i64` are kept exact; everything else is stored as
/// `f64`. Equality treats an integer and a float as equal when they denote
/// the same mathematical value (`Number::from(2) == Number::from(2.0)`).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An exact 64-bit signed integer.
    Int(i64),
    /// A 64-bit IEEE-754 float (never NaN; NaN inputs are rejected by the
    /// parsers and normalized to `0.0` by `From<f64>`).
    Float(f64),
}

impl Number {
    /// Returns the value as `i64` if it is an integer (or an integral float
    /// that fits exactly).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Returns the value as `f64` (lossless for floats, lossy only for very
    /// large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// True if the number is stored as an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Number::Int(_))
    }

    fn canonical(&self) -> (i64, f64, bool) {
        match self.as_i64() {
            Some(i) => (i, 0.0, true),
            None => (0, self.as_f64(), false),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.canonical(), other.canonical()) {
            ((a, _, true), (b, _, true)) => a == b,
            ((_, a, false), (_, b, false)) => a == b,
            ((a, _, true), (_, b, false)) | ((_, b, false), (a, _, true)) => a as f64 == b,
        }
    }
}

impl Eq for Number {}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Number {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a.cmp(b),
            _ => self
                .as_f64()
                .partial_cmp(&other.as_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl Hash for Number {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self.as_i64() {
            Some(i) => i.hash(state),
            None => self.as_f64().to_bits().hash(state),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(v) => {
                if v.is_infinite() {
                    // JSON has no infinity literal; emit a large magnitude.
                    write!(f, "{}", if v > 0.0 { "1e309" } else { "-1e309" })
                } else if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}

impl From<i32> for Number {
    fn from(v: i32) -> Self {
        Number::Int(v as i64)
    }
}

impl From<u32> for Number {
    fn from(v: u32) -> Self {
        Number::Int(v as i64)
    }
}

impl From<usize> for Number {
    fn from(v: usize) -> Self {
        match i64::try_from(v) {
            Ok(i) => Number::Int(i),
            Err(_) => Number::Float(v as f64),
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Number::Int(i),
            Err(_) => Number::Float(v as f64),
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Number::Float(0.0)
        } else {
            Number::Float(v)
        }
    }
}

impl From<f32> for Number {
    fn from(v: f32) -> Self {
        Number::from(v as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_float_equality() {
        assert_eq!(Number::from(2), Number::from(2.0));
        assert_ne!(Number::from(2), Number::from(2.5));
        assert_eq!(Number::from(-7), Number::from(-7.0));
    }

    #[test]
    fn as_i64_integral_float() {
        assert_eq!(Number::from(3.0).as_i64(), Some(3));
        assert_eq!(Number::from(3.5).as_i64(), None);
        assert_eq!(Number::from(1e300).as_i64(), None);
    }

    #[test]
    fn as_u64_rejects_negative() {
        assert_eq!(Number::from(-1).as_u64(), None);
        assert_eq!(Number::from(42).as_u64(), Some(42));
    }

    #[test]
    fn ordering_mixed() {
        assert!(Number::from(1) < Number::from(1.5));
        assert!(Number::from(2.5) < Number::from(3));
        assert!(Number::from(10) > Number::from(9));
    }

    #[test]
    fn display_round_trips_through_json_semantics() {
        assert_eq!(Number::from(5).to_string(), "5");
        assert_eq!(Number::from(5.0).to_string(), "5.0");
        assert_eq!(Number::from(2.25).to_string(), "2.25");
    }

    #[test]
    fn nan_is_normalized() {
        assert_eq!(Number::from(f64::NAN), Number::from(0.0));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        let h = |n: Number| {
            let mut s = DefaultHasher::new();
            n.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(Number::from(2)), h(Number::from(2.0)));
    }

    #[test]
    fn u64_overflow_becomes_float() {
        let n = Number::from(u64::MAX);
        assert!(!n.is_int());
        assert!(n.as_f64() > 1e18);
    }
}
