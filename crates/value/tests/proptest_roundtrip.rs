//! Property-based tests for the value model and text formats.

use oprc_value::{json, merge, yaml, Map, Number, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values with bounded depth/size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Number(Number::Int(i))),
        (-1e12f64..1e12f64).prop_map(|f| Value::Number(Number::from(f))),
        "[a-zA-Z0-9 _\\-\\.\\\\\"\u{00e9}\u{4e16}]{0,24}".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-z][a-z0-9_]{0,8}", inner, 0..6)
                .prop_map(|m| Value::Object(m.into_iter().collect::<Map>())),
        ]
    })
}

proptest! {
    #[test]
    fn json_round_trip_compact(v in arb_value()) {
        let text = json::to_string(&v);
        let parsed = json::parse(&text).unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn json_round_trip_pretty(v in arb_value()) {
        let text = json::to_string_pretty(&v);
        let parsed = json::parse(&text).unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn parse_never_panics(s in "\\PC{0,64}") {
        let _ = json::parse(&s);
        let _ = yaml::parse(&s);
    }

    #[test]
    fn diff_merge_round_trip(a in arb_value(), b in arb_value()) {
        // Merge-patch cannot express explicit-null object members
        // (RFC 7396); platform state is normalized, so test on
        // normalized targets.
        let mut b = b;
        merge::normalize(&mut b);
        let mut applied = a.clone();
        match merge::diff(&a, &b) {
            Some(patch) => merge::deep_merge(&mut applied, patch),
            None => prop_assert_eq!(&a, &b),
        }
        merge::normalize(&mut applied);
        prop_assert_eq!(applied, b);
    }

    #[test]
    fn approx_size_within_factor(v in arb_value()) {
        let exact = json::to_string(&v).len();
        let approx = v.approx_size();
        // Within 2x in both directions plus slack for tiny values.
        prop_assert!(approx + 8 >= exact / 2, "approx={} exact={}", approx, exact);
        prop_assert!(approx <= exact * 2 + 8, "approx={} exact={}", approx, exact);
    }

    #[test]
    fn pointer_get_after_set(
        keys in prop::collection::vec("[a-z]{1,6}", 1..5),
        val in arb_value(),
    ) {
        let pointer: String = keys.iter().map(|k| format!("/{k}")).collect();
        let mut doc = Value::Null;
        prop_assume!(oprc_value::path::set(&mut doc, &pointer, val.clone()));
        prop_assert_eq!(doc.pointer(&pointer), Some(&val));
    }

    #[test]
    fn yaml_emit_parse_round_trip(v in arb_value()) {
        let text = yaml::to_string(&v);
        let parsed = yaml::parse(&text).unwrap_or_else(|e| {
            panic!("emitted YAML failed to parse: {e}\n---\n{text}\n---")
        });
        prop_assert_eq!(parsed, v, "yaml text:\n{}", text);
    }

    #[test]
    fn yaml_parses_emitted_json_scalars(i in any::<i64>(), b in any::<bool>()) {
        // YAML is a superset of JSON for flow scalars; spot-check numbers
        // and booleans embedded in a mapping.
        let text = format!("int: {i}\nflag: {b}\n");
        let v = yaml::parse(&text).unwrap();
        prop_assert_eq!(v["int"].as_i64(), Some(i));
        prop_assert_eq!(v["flag"].as_bool(), Some(b));
    }
}
