//! Multi-datacenter placement (the paper's §VI future work):
//! jurisdiction- and latency-aware deployment driven by the same NFR
//! interface.
//!
//! ```text
//! cargo run -p oprc-examples --bin multiregion
//! ```

use oprc_cluster::topology::Topology;
use oprc_core::nfr::NfrSpec;
use oprc_platform::multiregion::{place, ClientPopulation, RegionSpec};
use oprc_simcore::SimDuration;
use oprc_value::vjson;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Multi-region deployment (§VI future work) ==\n");

    // The provider's world: three regions, tagged jurisdictions,
    // measured inter-region latency.
    let mut topo = Topology::new();
    topo.add_zone("us-east", "use-a");
    topo.add_zone("eu-west", "euw-a");
    topo.add_zone("ap-south", "aps-a");
    topo.set_region_latency("us-east", "eu-west", SimDuration::from_millis(80));
    topo.set_region_latency("us-east", "ap-south", SimDuration::from_millis(200));
    topo.set_region_latency("eu-west", "ap-south", SimDuration::from_millis(120));
    topo.set_jurisdiction("eu-west", "EU");
    topo.set_jurisdiction("us-east", "US");

    let regions = vec![
        RegionSpec {
            name: "us-east".into(),
            zone: "use-a".into(),
            cost_per_hour: 1.0,
        },
        RegionSpec {
            name: "eu-west".into(),
            zone: "euw-a".into(),
            cost_per_hour: 1.2,
        },
        RegionSpec {
            name: "ap-south".into(),
            zone: "aps-a".into(),
            cost_per_hour: 0.8,
        },
    ];
    let clients = vec![
        ClientPopulation {
            zone: "use-a".into(),
            weight: 3.0,
        },
        ClientPopulation {
            zone: "euw-a".into(),
            weight: 2.0,
        },
        ClientPopulation {
            zone: "aps-a".into(),
            weight: 1.0,
        },
    ];

    let cases = [
        ("no requirements (cost-optimal)", vjson!({})),
        ("global p99 <= 10ms", vjson!({"qos": {"latency": 10}})),
        (
            "EU jurisdiction only",
            vjson!({"constraint": {"jurisdiction": "EU"}}),
        ),
        (
            "10ms + budget 2.5/h",
            vjson!({"qos": {"latency": 10}, "constraint": {"budget": 2.5}}),
        ),
        (
            "infeasible: EU data, 5ms for US users",
            vjson!({"qos": {"latency": 5}, "constraint": {"jurisdiction": "EU"}}),
        ),
    ];

    for (label, doc) in cases {
        let nfr = NfrSpec::from_value(&doc)?;
        print!("{label:<42} -> ");
        match place(&nfr, &regions, &clients, &topo) {
            Ok(p) => println!(
                "regions {:?}, worst RTT {}, mean RTT {}, cost {:.2}/h",
                p.regions, p.worst_latency, p.mean_latency, p.cost_per_hour
            ),
            Err(e) => println!("{e}"),
        }
    }

    println!("\nok: the same NFR document drives single- and multi-region deployment.");
    Ok(())
}
