//! Shared nothing: this package exists to host the runnable example
//! binaries (`quickstart`, `image_pipeline`, `video_streaming`,
//! `template_selection`, `multiregion`). Run one with e.g.
//! `cargo run -p oprc-examples --bin quickstart`.
