//! Class-runtime templates in action (paper Fig. 2): the same platform
//! materializes different runtime designs per class, driven purely by
//! each class's declared non-functional requirements.
//!
//! ```text
//! cargo run -p oprc-examples --bin template_selection
//! ```

use oprc_core::nfr::NfrSpec;
use oprc_core::template::TemplateCatalog;
use oprc_value::vjson;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Requirement-driven class-runtime templates (Fig. 2) ==\n");
    let catalog = TemplateCatalog::standard();
    println!(
        "provider catalog ({} templates):",
        catalog.templates().len()
    );
    for t in catalog.templates() {
        println!("  - {:<18} priority {}", t.name, t.priority);
    }
    println!();

    let profiles = [
        ("plain class, nothing declared", vjson!({})),
        (
            "cache-like, explicitly non-persistent",
            vjson!({"constraint": {"persistent": false}}),
        ),
        (
            "hot API class (throughput 5000/s)",
            vjson!({"qos": {"throughput": 5000}, "constraint": {"persistent": true}}),
        ),
        (
            "interactive class (p99 <= 5ms)",
            vjson!({"qos": {"latency": 5}, "constraint": {"persistent": true}}),
        ),
        (
            "critical class (availability 99.95%)",
            vjson!({"qos": {"availability": 0.9995}, "constraint": {"persistent": true}}),
        ),
    ];

    for (label, nfr_doc) in profiles {
        let nfr = NfrSpec::from_value(&nfr_doc)?;
        let t = catalog.select(&nfr)?;
        println!("{label}:");
        println!("  -> template '{}'", t.name);
        println!(
            "     engine={:?} persistent={} dht_replication={} batch={} min_replicas={} locality={}",
            t.config.engine,
            t.config.persistent,
            t.config.dht_replication,
            t.config.write_behind_batch,
            t.config.min_replicas,
            t.config.locality_routing,
        );
    }

    // Providers can override templates for their own objectives
    // (§III-B: "Oparaca also allows platform provider to customize the
    // template configurations, selection conditions, and priority").
    let mut custom = TemplateCatalog::standard();
    custom.add(oprc_core::template::ClassRuntimeTemplate::new(
        "default",
        0,
        oprc_core::template::RuntimeConfig {
            write_behind_batch: 250,
            ..oprc_core::template::RuntimeConfig::default()
        },
    ));
    let t = custom.select(&NfrSpec::default())?;
    println!(
        "\nprovider override: default template now batches {} records per DB write",
        t.config.write_behind_batch
    );
    Ok(())
}
