//! Quickstart: the FaaS-vs-OaaS bird's-eye view (paper Fig. 1) as code.
//!
//! With FaaS, the developer writes a stateless function and *separately*
//! manages a data store. With OaaS, logic + data + requirements live in
//! one class; the platform manages state transparently.
//!
//! ```text
//! cargo run -p oprc-examples --bin quickstart
//! ```

use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::vjson;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== OaaS quickstart (paper §IV tutorial flow) ==\n");
    let mut platform = EmbeddedPlatform::new();

    // §IV step 3 — "Creating a new function". In real Oparaca this is a
    // container accepting HTTP; here it is a closure with the same
    // pure-function contract: state in, (output, state delta) out.
    platform.register_function("img/counter-incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({ "count": n })))
    });
    platform.register_function("img/counter-get", |task| {
        Ok(TaskResult::output(task.state_in["count"].clone()))
    });

    // §IV step 4 — "Defining a new class definition" (YAML, like
    // Listing 1). Data (`count`), logic (`incr`, `value`), and
    // non-functional requirements travel together.
    platform.deploy_yaml(
        "
classes:
  - name: Counter
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/counter-incr
      - name: value
        image: img/counter-get
        readonly: true
",
    )?;
    let spec = platform.runtime_spec("Counter").expect("class deployed");
    println!("deployed class 'Counter'");
    println!("  class runtime template: {}", spec.template);
    println!("  persistent:             {}", spec.config.persistent);
    println!(
        "  write-behind batch:     {}\n",
        spec.config.write_behind_batch
    );

    // §IV step 5 — "Deploying class and interacting with objects".
    let counter = platform.create_object("Counter", vjson!({"count": 0}))?;
    println!("created object {counter} of class Counter");

    for _ in 0..3 {
        let out = platform.invoke(counter, "incr", vec![])?;
        println!("  incr -> {}", out.output);
    }
    let value = platform.invoke(counter, "value", vec![])?;
    println!("  value -> {}", value.output);

    // The OaaS difference: the developer never touched a database, yet
    // the state is durable. Flush the write-behind tier and wipe the
    // in-memory hash table to prove it.
    platform.flush();
    platform.simulate_memory_loss();
    let after = platform.get_state(counter)?;
    println!("\nafter simulated instance restart, state = {after}");
    assert_eq!(after["count"].as_i64(), Some(3));

    let (dht_puts, consolidated, batches, singles) = platform.storage_stats();
    println!("\nstorage stats (managed by the platform, not the developer):");
    println!("  in-memory hash-table puts: {dht_puts}");
    println!("  updates consolidated:      {consolidated}");
    println!("  batched DB writes:         {batches}");
    println!("  direct DB writes:          {singles}");
    println!("\nok: logic + data + requirements in one deployment package.");
    Ok(())
}
