//! IoT devices as objects (the paper's §II-D extension): device twins,
//! telemetry, and fleet rollups, all on the OaaS abstraction.
//!
//! ```text
//! cargo run -p oprc-examples --bin iot_fleet
//! ```

use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::{vjson, Value};
use oprc_workloads::iot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== IoT fleet on OaaS (§II-D) ==\n");
    let mut platform = EmbeddedPlatform::new();
    iot::install(&mut platform)?;

    // The Device class declared `latency: 10` — the platform chose the
    // low-latency template (warm replicas, locality routing).
    let spec = platform.runtime_spec("Device").expect("deployed");
    println!(
        "class Device -> template '{}' (min replicas {}, locality {})\n",
        spec.template, spec.config.min_replicas, spec.config.locality_routing
    );

    let (fleet, devices) = iot::provision_fleet(&mut platform, 4)?;
    println!("provisioned fleet {fleet} with {} devices", devices.len());

    // Reconfigure the whole fleet (desired twin), then only some devices
    // acknowledge.
    for d in &devices {
        platform.invoke(
            *d,
            "configure",
            vec![vjson!({"rate_hz": 10, "mode": "eco"})],
        )?;
    }
    for d in &devices[..3] {
        platform.invoke(*d, "ack", vec![])?;
    }
    println!("configured 4 devices; 3 acknowledged\n");

    // Telemetry flows into each device object.
    for (i, d) in devices.iter().enumerate() {
        for t in 0..8 {
            platform.invoke(
                *d,
                "ingest",
                vec![Value::from(20.0 + i as f64 + t as f64 / 10.0)],
            )?;
        }
    }

    for d in &devices {
        let h = platform.invoke(*d, "health", vec![])?;
        println!("  {d} health -> {}", h.output);
    }

    let snapshots: Vec<Value> = devices
        .iter()
        .map(|d| platform.invoke(*d, "health", vec![]).map(|r| r.output))
        .collect::<Result<_, _>>()?;
    let out = platform.invoke(fleet, "summarize", vec![Value::Array(snapshots)])?;
    println!("\nfleet summary -> {}", out.output);
    assert_eq!(out.output["out_of_sync"].as_i64(), Some(1));

    println!("\nok: devices, their state, and their management functions are one abstraction.");
    Ok(())
}
