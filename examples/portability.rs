//! The §II-C portability claim, demonstrated: migrate a running
//! application — objects, structured state, and files — from one
//! Oparaca platform to another. The application package (classes +
//! functions) redeploys unchanged; the snapshot carries the data.
//!
//! ```text
//! cargo run -p oprc-examples --bin portability
//! ```

use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::vjson;
use oprc_workloads::image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Cross-platform migration (§II-C portability) ==\n");

    // --- Provider A ---
    let mut provider_a = EmbeddedPlatform::new();
    image::install(&mut provider_a)?;
    let photo = provider_a.create_object("LabelledImage", vjson!({}))?;
    let url = provider_a.upload_url(photo, "image")?;
    provider_a.upload(&url, image::generate_image(64, 32, 3), "image/raw")?;
    provider_a.invoke(photo, "resize", vec![vjson!({"width": 32, "height": 16})])?;
    provider_a.invoke(photo, "detectObject", vec![])?;
    let state_a = provider_a.get_state(photo)?;
    println!("provider A: object {photo} state = {state_a}");

    // --- Snapshot ---
    let snapshot = provider_a.export_snapshot(true);
    let as_json = oprc_value::json::to_string(&snapshot);
    println!(
        "exported snapshot: {} objects, {} bytes of JSON\n",
        snapshot["objects"].len(),
        as_json.len()
    );

    // --- Provider B: same application package, different platform ---
    let mut provider_b = EmbeddedPlatform::new();
    image::install(&mut provider_b)?; // the app redeploys; NFRs re-select templates here
    let snapshot = oprc_value::json::parse(&as_json)?; // survives the wire
    let n = provider_b.import_snapshot(&snapshot)?;
    println!("provider B: imported {n} object(s)");

    // The object keeps its identity, state, and file — and keeps working.
    let state_b = provider_b.get_state(photo)?;
    assert_eq!(state_a, state_b);
    println!("provider B: object {photo} state = {state_b}");

    let out = provider_b.invoke(photo, "detectObject", vec![])?;
    println!(
        "provider B: detectObject on migrated file -> {}",
        out.output
    );
    assert_eq!(out.output["objects"].as_i64(), Some(3));

    let dl = provider_b.download_url(photo, "image")?;
    let obj = provider_b.download(&dl)?;
    println!(
        "provider B: migrated file readable ({} bytes, {})",
        obj.data.len(),
        obj.meta.content_type
    );

    println!("\nok: the object abstraction carried the application across providers.");
    Ok(())
}
