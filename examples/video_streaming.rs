//! The introduction's video-streaming scenario (§I): files, metadata,
//! and access control unified in one class, with an internal transcode
//! step reachable only through the `publish` dataflow.
//!
//! ```text
//! cargo run -p oprc-examples --bin video_streaming
//! ```

use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::vjson;
use oprc_workloads::video;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Video streaming on OaaS ==\n");
    let mut platform = EmbeddedPlatform::new();
    video::install(&mut platform)?;

    // The availability NFR (0.999) made the platform pick the
    // high-availability template: replicated in-memory state and a warm
    // replica floor (§III-B, Fig. 2).
    let spec = platform.runtime_spec("Video").expect("deployed");
    println!("class Video deployed via template '{}'", spec.template);
    println!("  dht replication: {}", spec.config.dht_replication);
    println!("  replica floor:   {}\n", spec.config.min_replicas);

    let movie = platform.create_object("Video", vjson!({}))?;
    let url = platform.upload_url(movie, "source")?;
    platform.upload(&url, video::generate_video(120), "video/raw")?;
    println!("uploaded 120s source for {movie}");

    // Direct transcode is denied — it is `access: internal`.
    match platform.invoke(movie, "transcode", vec![vjson!(120)]) {
        Err(e) => println!("transcode directly      -> denied ({e})"),
        Ok(_) => unreachable!("internal functions are not externally callable"),
    }

    // The public path: publish = ingest → transcode dataflow.
    let out = platform.invoke(
        movie,
        "publish",
        vec![vjson!({"title": "OaaS in 2 minutes"})],
    )?;
    println!("publish dataflow        -> {}", out.output);

    for quality in [480, 1080] {
        let out = platform.invoke(movie, "watch", vec![vjson!({ "quality": quality })])?;
        println!("watch {quality}p             -> {}", out.output);
    }
    let stats = platform.invoke(movie, "stats", vec![])?;
    println!("stats                   -> {}", stats.output);

    let state = platform.get_state(movie)?;
    assert_eq!(state["views"].as_i64(), Some(2));
    println!("\nok: one class replaced FaaS + object storage + a metadata DB + an orchestrator.");
    Ok(())
}
