//! The paper's Listing 1 application end to end: classes with
//! inheritance, unstructured file state behind presigned URLs, and a
//! dataflow pipeline.
//!
//! ```text
//! cargo run -p oprc-examples --bin image_pipeline
//! ```

use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::vjson;
use oprc_workloads::image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Listing 1: Image / LabelledImage ==\n");
    let mut platform = EmbeddedPlatform::new();
    image::install(&mut platform)?;

    // LabelledImage inherits resize/changeFormat from Image and adds
    // detectObject (§II-A inheritance & polymorphism).
    let photo = platform.create_object("LabelledImage", vjson!({}))?;
    println!("created {photo} : LabelledImage (parent: Image)");

    // Upload the source file through a presigned PUT URL — the paper's
    // §III-D flow: user code never sees the platform's secret key.
    let put_url = platform.upload_url(photo, "image")?;
    println!(
        "presigned PUT URL (truncated): {}...",
        &put_url[..60.min(put_url.len())]
    );
    let raster = image::generate_image(256, 128, 3);
    platform.upload(&put_url, raster, "image/raw")?;
    println!("uploaded 256x128 synthetic image with 3 objects\n");

    // Inherited method, dispatched to Image::resize.
    let out = platform.invoke(photo, "resize", vec![vjson!({"width": 64, "height": 32})])?;
    println!("resize (inherited from Image)    -> {}", out.output);

    // Own method.
    let out = platform.invoke(photo, "detectObject", vec![])?;
    println!("detectObject (own method)        -> {}", out.output);

    // Format change rewrites the stored object's content type.
    let out = platform.invoke(photo, "changeFormat", vec![vjson!({"format": "webp"})])?;
    println!("changeFormat                     -> {}", out.output);

    // The declarative dataflow (§II-B): resize → detectObject, defined
    // in YAML, re-wireable without touching function code.
    let fresh = platform.create_object("LabelledImage", vjson!({}))?;
    let url = platform.upload_url(fresh, "image")?;
    platform.upload(&url, image::generate_image(256, 128, 2), "image/raw")?;
    let out = platform.invoke(fresh, "pipeline", vec![vjson!({"width": 32, "height": 16})])?;
    println!("pipeline dataflow (resize→label) -> {}", out.output);

    let state = platform.get_state(fresh)?;
    println!("\nfinal object state: {state}");
    let file = platform.file_ref(fresh, "image").expect("file written");
    println!(
        "file state: bucket={} key={} etag={}",
        file.bucket,
        file.key,
        file.etag.as_deref().unwrap_or("-")
    );
    println!("\nok: structured + unstructured state and a workflow, one class definition.");
    Ok(())
}
