//! Admission-control edge cases across the platform (ISSUE PR 8
//! satellite): token buckets at the gateway edge interacting with
//! dataflows, the virtual clock, metric-window rotation, chaos, and
//! the circuit breaker.

use oprc_chaos::{FaultPlan, InjectionSite};
use oprc_core::invocation::TaskResult;
use oprc_platform::admission::AdmissionConfig;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::monitoring::FAST_LOOKBACK;
use oprc_platform::PlatformError;
use oprc_simcore::SimDuration;
use oprc_value::vjson;

/// A virtual-clock platform with a counter method and a two-step
/// dataflow, availability tier 0.99 (3 attempts, breaker armed).
fn platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.enable_virtual_clock();
    p.register_function("img/incr", |t| {
        let n = t.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.register_function("img/double", |t| {
        let x = t
            .args
            .first()
            .and_then(oprc_value::Value::as_i64)
            .unwrap_or(0);
        Ok(TaskResult::output(x * 2))
    });
    p.deploy_yaml(
        "
classes:
  - name: Counter
    qos:
      availability: 0.99
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
      - name: double
        image: img/double
    dataflows:
      - name: pipeline
        steps:
          - id: a
            function: incr
          - id: b
            function: double
            inputs: [\"step:a\"]
",
    )
    .unwrap();
    p
}

#[test]
fn dataflow_admitted_at_edge_runs_all_steps_despite_empty_bucket() {
    // Admission charges one token per *logical* invocation: a dataflow
    // admitted with the last token still runs every step; only the
    // next edge request is refused.
    let mut p = platform();
    p.enable_admission(AdmissionConfig::new(0.0, 1.0)); // 1 token, no refill
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();

    let out = p.invoke_as("acme", id, "pipeline", vec![]).unwrap();
    assert_eq!(out.output.as_i64(), Some(2), "both steps ran");
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));

    // The bucket is now empty: method and dataflow alike are refused
    // at the edge, and the rejection never touches object state.
    for function in ["incr", "pipeline"] {
        match p.invoke_as("acme", id, function, vec![]) {
            Err(PlatformError::AdmissionRejected { tenant }) => assert_eq!(tenant, "acme"),
            other => panic!("expected edge rejection for {function}, got {other:?}"),
        }
    }
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));

    // The rejections were counted against the tenant, not the class.
    let stats = p.admission().unwrap().stats(p.now());
    assert_eq!((stats[0].admitted, stats[0].rejected), (1, 2));
}

#[test]
fn burst_refill_spans_metric_window_rotation() {
    // Exhaust the bucket, then advance the virtual clock far enough to
    // rotate the 5s-bucket sliding window several times. Refill must
    // track the clock exactly (rate × Δt, capped at burst), and the
    // tenant's windowed completion counts must rotate out while the
    // bucket refills — two different time-keepers staying consistent.
    let mut p = platform();
    p.enable_admission(AdmissionConfig::new(0.5, 2.0)); // 1 token / 2s
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();

    assert!(p.invoke_as("t", id, "incr", vec![]).is_ok());
    assert!(p.invoke_as("t", id, "incr", vec![]).is_ok());
    assert!(matches!(
        p.invoke_as("t", id, "incr", vec![]),
        Err(PlatformError::AdmissionRejected { .. })
    ));
    let window = p
        .metrics()
        .tenant_window("t", p.now(), FAST_LOOKBACK)
        .unwrap();
    assert_eq!(window.completed, 2);

    // +6s: three window buckets rotate; refill grants 0.5 × 6 = 3,
    // capped at burst 2.
    p.advance_clock(SimDuration::from_secs(6));
    assert_eq!(p.admission().unwrap().tokens("t", p.now()), Some(2.0));
    assert!(p.invoke_as("t", id, "incr", vec![]).is_ok());
    assert!(p.invoke_as("t", id, "incr", vec![]).is_ok());
    assert!(matches!(
        p.invoke_as("t", id, "incr", vec![]),
        Err(PlatformError::AdmissionRejected { .. })
    ));

    // +12s: the first two completions have left the 10s fast window;
    // only the recent pair remains. Totals keep everything.
    p.advance_clock(SimDuration::from_secs(6));
    let w = p
        .metrics()
        .tenant_window("t", p.now(), FAST_LOOKBACK)
        .unwrap();
    assert_eq!(w.completed, 2);
    let summary = p
        .metrics()
        .tenant_summaries()
        .into_iter()
        .find(|t| t.tenant == "t")
        .unwrap();
    assert_eq!(summary.completed, 4);
    assert_eq!(summary.rejected, 2);

    // The refill anchor is the last bucket touch (t=6s): the six
    // seconds since have banked the full burst again. Drain it.
    assert!(p.invoke_as("t", id, "incr", vec![]).is_ok());
    assert!(p.invoke_as("t", id, "incr", vec![]).is_ok());
    assert!(matches!(
        p.invoke_as("t", id, "incr", vec![]),
        Err(PlatformError::AdmissionRejected { .. })
    ));

    // Fractional refill: +1s at 0.5/s is not yet a whole token.
    p.advance_clock(SimDuration::from_secs(1));
    assert!(matches!(
        p.invoke_as("t", id, "incr", vec![]),
        Err(PlatformError::AdmissionRejected { .. })
    ));
    p.advance_clock(SimDuration::from_secs(1));
    assert!(p.invoke_as("t", id, "incr", vec![]).is_ok());
}

#[test]
fn admission_is_checked_before_the_breaker_and_after_it_opens() {
    // Order of the edge checks: an empty bucket rejects with
    // AdmissionRejected *before* the breaker is consulted; an admitted
    // request can still be refused by an open breaker (CircuitOpen).
    // Chaos drives the breaker open; admission stays orthogonal.
    let mut p = platform();
    p.enable_chaos(FaultPlan::new(0).rate(InjectionSite::EngineExecute, 1.0));
    p.enable_admission(AdmissionConfig::new(1.0, 50.0));
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    let threshold = p.retry_policy("Counter").unwrap().breaker_threshold;

    // Burn settled failures until the breaker opens; every attempt was
    // admitted (tokens spent), none committed state.
    let mut opened = false;
    for _ in 0..(threshold + 3) {
        match p.invoke_as("acme", id, "incr", vec![]) {
            Err(PlatformError::CircuitOpen { .. }) => {
                opened = true;
                break;
            }
            Err(_) => {}
            Ok(_) => panic!("all engine calls are faulted"),
        }
    }
    assert!(opened, "breaker never opened under total engine failure");
    assert_eq!(p.breaker_state("Counter", "incr"), Some("open"));
    let spent = p.admission().unwrap().stats(p.now())[0].admitted;
    assert!(
        spent >= u64::from(threshold),
        "every attempt burned a token"
    );

    // Drain the remaining budget against the open breaker, then verify
    // the empty bucket short-circuits first: the rejection is
    // AdmissionRejected even though the breaker is still open.
    loop {
        match p.invoke_as("acme", id, "incr", vec![]) {
            Err(PlatformError::CircuitOpen { .. }) => {}
            Err(PlatformError::AdmissionRejected { tenant }) => {
                assert_eq!(tenant, "acme");
                break;
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(p.breaker_state("Counter", "incr"), Some("open"));

    // Tokens refill with virtual time while the breaker cools down;
    // with chaos calmed, the first admitted probe closes the breaker
    // and state advances exactly once.
    p.disable_chaos();
    p.enable_chaos(FaultPlan::new(0));
    let cooldown = p.retry_policy("Counter").unwrap().breaker_cooldown;
    p.advance_clock(cooldown + SimDuration::from_secs(5));
    p.advance_chaos_clock(cooldown + SimDuration::from_millis(1));
    let out = p.invoke_as("acme", id, "incr", vec![]).unwrap();
    assert_eq!(out.output.as_i64(), Some(1));
    assert_eq!(p.breaker_state("Counter", "incr"), Some("closed"));
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));
}

#[test]
fn plain_invoke_bypasses_admission_and_tenant_metrics() {
    // The untenanted hot path (`invoke`) is untouched by admission:
    // no token charged, no tenant series written.
    let mut p = platform();
    p.enable_admission(AdmissionConfig::new(0.0, 1.0));
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    for _ in 0..5 {
        p.invoke(id, "incr", vec![]).unwrap();
    }
    assert!(p.metrics().tenant_summaries().is_empty());
    assert!(p.admission().unwrap().stats(p.now()).is_empty());
    // The single token is still there for the first tenant request.
    assert!(p.invoke_as("acme", id, "incr", vec![]).is_ok());
}
