//! End-to-end telemetry: a seeded multi-stage dataflow run must export
//! a span tree that mirrors the invocation plane — one root `invoke`,
//! `dataflow.stage` spans matching the dataflow's DAG stages,
//! `route`/`state.load`/`engine.execute`/`state.commit` under every
//! step, correct parent links, non-decreasing timestamps — and the same
//! platform built twice must export byte-identical JSONL.

use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_telemetry::{Span, TelemetryConfig};
use oprc_value::{vjson, Value};

/// A fan-in dataflow: two parallel steps (`a`, `b`) feeding `merge`.
const PACKAGE: &str = "
classes:
  - name: Doc
    keySpecs: [a, b, merged]
    functions:
      - name: fa
        image: img/fa
      - name: fb
        image: img/fb
      - name: fmerge
        image: img/fmerge
    dataflows:
      - name: fanin
        output: merge
        steps:
          - id: a
            function: fa
            inputs: [input]
          - id: b
            function: fb
            inputs: [input]
          - id: merge
            function: fmerge
            inputs: [\"step:a\", \"step:b\"]
";

/// Builds the platform, runs one `fanin` invocation under tracing, and
/// returns it. Every function patches state so `state.commit` has work.
fn traced_run() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.enable_telemetry(TelemetryConfig::default());
    p.register_function("img/fa", |t| {
        let x = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        Ok(TaskResult::output(x * 2).with_patch(vjson!({"a": (x * 2)})))
    });
    p.register_function("img/fb", |t| {
        let x = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        Ok(TaskResult::output(x + 1).with_patch(vjson!({"b": (x + 1)})))
    });
    p.register_function("img/fmerge", |t| {
        let a = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        let b = t.args.get(1).and_then(Value::as_i64).unwrap_or(0);
        Ok(TaskResult::output(a + b).with_patch(vjson!({"merged": (a + b)})))
    });
    p.deploy_yaml(PACKAGE).expect("package deploys");
    let id = p.create_object("Doc", vjson!({})).expect("creates");
    let out = p
        .invoke(id, "fanin", vec![vjson!(5)])
        .expect("dataflow runs");
    assert_eq!(out.output.as_i64(), Some(16), "(5*2) + (5+1)");
    p
}

fn children_of(spans: &[Span], parent: u64) -> Vec<&Span> {
    spans.iter().filter(|s| s.parent == Some(parent)).collect()
}

#[test]
fn span_tree_matches_the_dataflow_dag() {
    let p = traced_run();
    let spans = p.telemetry().finished();

    // Exactly one root: the invoke span, marked successful.
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one invocation → one root");
    let root = roots[0];
    assert_eq!(root.name, "invoke");
    assert_eq!(root.attrs["function"].as_str(), Some("fanin"));
    assert_eq!(root.attrs["class"].as_str(), Some("Doc"));
    assert_eq!(root.attrs["outcome"].as_str(), Some("ok"));

    // Stage spans under the root must mirror the DAG computed from the
    // spec: [a, b] in parallel, then [merge].
    let pkg = oprc_core::parse::package_from_yaml(PACKAGE).expect("parses");
    let df = pkg.classes[0]
        .dataflows
        .iter()
        .find(|d| d.name == "fanin")
        .expect("dataflow present");
    let dag: Vec<Vec<String>> = df
        .try_stages()
        .expect("acyclic")
        .into_iter()
        .map(|stage| stage.iter().map(|s| s.id.clone()).collect())
        .collect();
    assert_eq!(
        dag,
        vec![vec!["a".to_string(), "b".into()], vec!["merge".into()]]
    );

    let stages: Vec<&Span> = children_of(&spans, root.id)
        .into_iter()
        .filter(|s| s.name == "dataflow.stage")
        .collect();
    assert_eq!(stages.len(), dag.len(), "one span per DAG stage");
    for (span, ids) in stages.iter().zip(&dag) {
        assert_eq!(span.attrs["parallelism"].as_u64(), Some(ids.len() as u64));
        let steps: Vec<&Span> = children_of(&spans, span.id)
            .into_iter()
            .filter(|s| s.name == "dataflow.step")
            .collect();
        let step_ids: Vec<&str> = steps
            .iter()
            .map(|s| s.attrs["step"].as_str().unwrap())
            .collect();
        assert_eq!(&step_ids, ids, "step spans in stage order");
        // Every step carries the full invocation-plane sub-tree.
        for step in steps {
            for name in ["route", "state.load", "engine.execute", "state.commit"] {
                assert_eq!(
                    children_of(&spans, step.id)
                        .iter()
                        .filter(|s| s.name == name)
                        .count(),
                    1,
                    "step '{}' needs one '{name}' child",
                    step.attrs["step"]
                );
            }
        }
    }

    // Commits patched state on every step.
    assert!(spans
        .iter()
        .filter(|s| s.name == "state.commit")
        .all(|s| s.attrs["patched"].as_bool() == Some(true)));

    // Timestamps are sane SimTimes: start ≤ end everywhere, and
    // children start no earlier than their parent.
    let by_id = |id: u64| spans.iter().find(|s| s.id == id).unwrap();
    for s in &spans {
        let end = s.end.expect("exported spans are finished");
        assert!(s.start <= end, "span {} runs backwards", s.id);
        if let Some(parent) = s.parent {
            assert!(
                by_id(parent).start <= s.start,
                "child {} precedes parent",
                s.id
            );
        }
    }
}

#[test]
fn same_seed_exports_byte_identical_jsonl() {
    let a = traced_run().telemetry().export_jsonl();
    let b = traced_run().telemetry().export_jsonl();
    assert!(!a.is_empty());
    assert_eq!(a, b, "logical-clock traces must be reproducible");
}

#[test]
fn direct_invocation_has_flat_execute_chain() {
    let p = {
        let p = traced_run();
        let id = p.create_object("Doc", vjson!({})).expect("creates");
        p.telemetry().clear();
        p.invoke(id, "fa", vec![vjson!(1)]).expect("invokes");
        p
    };
    let spans = p.telemetry().finished();
    let root = spans.iter().find(|s| s.name == "invoke").unwrap();
    let kids: Vec<&str> = children_of(&spans, root.id)
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(
        kids,
        vec!["route", "state.load", "engine.execute", "state.commit"]
    );
}
