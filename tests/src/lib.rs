//! Shared fixtures for the cross-crate integration tests.

use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::vjson;

/// A platform with a simple stateful `Counter` class deployed.
pub fn counter_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/counter-incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({ "count": n })))
    });
    p.register_function("img/counter-get", |task| {
        Ok(TaskResult::output(task.state_in["count"].clone()))
    });
    p.deploy_yaml(
        "
classes:
  - name: Counter
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/counter-incr
      - name: value
        image: img/counter-get
        readonly: true
",
    )
    .expect("counter package deploys");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_usable() {
        let p = counter_platform();
        let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
        assert_eq!(
            p.invoke(id, "incr", vec![]).unwrap().output.as_i64(),
            Some(1)
        );
    }
}
