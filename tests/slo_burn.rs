//! Integration: the SLO engine's multi-window burn-rate alerts through
//! a full incident lifecycle — healthy baseline, chaos error storm
//! driving the class into fast-burn, and recovery once the storm stops.
//!
//! Uses the platform's virtual clock so window rotation is driven
//! explicitly: no sleeps, deterministic on any machine.

use oprc_chaos::{FaultPlan, InjectionSite};
use oprc_core::invocation::TaskResult;
use oprc_core::slo::{FAST_BURN_THRESHOLD, SLOW_BURN_THRESHOLD};
use oprc_platform::embedded::{EmbeddedPlatform, SloStatus};
use oprc_simcore::SimDuration;
use oprc_telemetry::TelemetryConfig;
use oprc_value::vjson;

/// A virtual-clock platform with one class on the 0.999 availability
/// tier (error budget 0.001 — a handful of window errors is already
/// many multiples of budget).
fn slo_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.enable_virtual_clock();
    p.register_function("img/pay", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Pay
    keySpecs: [count]
    qos:
      availability: 0.999
    functions:
      - name: charge
        image: img/pay
",
    )
    .expect("pay class deploys");
    p
}

fn status_of(p: &EmbeddedPlatform, class: &str) -> SloStatus {
    p.slo_report()
        .into_iter()
        .find(|s| s.class == class)
        .expect("class has an SLO entry")
}

#[test]
fn error_storm_burns_fast_and_recovers_after_chaos_off() {
    let mut p = slo_platform();
    p.enable_telemetry(TelemetryConfig::default());
    let id = p
        .create_object("Pay", vjson!({"count": 0}))
        .expect("creates");

    // Healthy baseline: 60 successes over 30s of virtual time.
    for _ in 0..60 {
        p.invoke(id, "charge", vec![]).expect("baseline invoke");
        p.advance_clock(SimDuration::from_millis(500));
    }
    let s = status_of(&p, "Pay");
    assert!(s.active, "slow window has traffic");
    assert_eq!(s.status, "ok");
    assert!(s.burn_fast < FAST_BURN_THRESHOLD);

    // Error storm: every engine execution faults. The 0.999 tier's
    // retries all fail, so each invoke lands as a window error.
    p.enable_chaos(FaultPlan::new(7).rate(InjectionSite::EngineExecute, 1.0));
    let mut storm_errors = 0;
    for _ in 0..20 {
        if p.invoke(id, "charge", vec![]).is_err() {
            storm_errors += 1;
        }
        p.advance_clock(SimDuration::from_millis(200));
        p.advance_chaos_clock(SimDuration::from_millis(200));
    }
    assert!(storm_errors > 0, "the storm produced failures");
    p.tick();

    // Mid-incident: both the 10s and 5m windows see error fractions at
    // many multiples of the 0.001 budget — paging-speed burn.
    let s = status_of(&p, "Pay");
    assert_eq!(
        s.status, "fast-burn",
        "burn {} / {}",
        s.burn_fast, s.burn_slow
    );
    assert!(s.burn_fast >= FAST_BURN_THRESHOLD);
    assert!(s.burn_slow >= FAST_BURN_THRESHOLD);

    // The tick emitted a burn-rate instant on the trace stream.
    let spans = p.telemetry().finished();
    let burn = spans
        .iter()
        .find(|sp| sp.name == "slo.burn")
        .expect("tick emits slo.burn instants");
    assert_eq!(burn.attrs["class"].as_str(), Some("Pay"));
    assert_eq!(burn.attrs["status"].as_str(), Some("fast-burn"));

    // Storm ends. Let the fast window rotate past the incident and the
    // breaker cool down, then resume successful traffic.
    p.disable_chaos();
    p.advance_clock(SimDuration::from_secs(15));
    p.advance_chaos_clock(SimDuration::from_secs(120));
    for _ in 0..20 {
        p.invoke(id, "charge", vec![]).expect("recovery invoke");
        p.advance_clock(SimDuration::from_millis(100));
    }
    p.tick();

    // Fast window is clean again so paging stops, but the 5m window
    // still remembers the incident: slow burn, not fast.
    let s = status_of(&p, "Pay");
    assert_ne!(s.status, "fast-burn", "paging must stop after recovery");
    assert!(s.burn_fast < FAST_BURN_THRESHOLD, "fast window is clean");
    assert_eq!(s.status, "slow-burn", "budget damage is still visible");
    assert!(s.burn_slow >= SLOW_BURN_THRESHOLD);

    // Once the incident ages out of the slow window entirely, the
    // class returns to ok.
    p.advance_clock(SimDuration::from_secs(301));
    for _ in 0..10 {
        p.invoke(id, "charge", vec![]).expect("steady invoke");
        p.advance_clock(SimDuration::from_millis(100));
    }
    let s = status_of(&p, "Pay");
    assert_eq!(s.status, "ok");
    assert!(s.burn_slow < SLOW_BURN_THRESHOLD);
}

#[test]
fn slo_entries_ride_the_plan_table() {
    let p = slo_platform();
    // The SLO is derived at deploy time: it is visible before any
    // traffic, inactive until the slow window sees an event.
    let s = status_of(&p, "Pay");
    assert!(!s.active);
    assert!((s.availability - 0.999).abs() < 1e-9);
    assert!((s.error_budget - 0.001).abs() < 1e-9);
    assert_eq!(s.max_p99_ms, None);
    assert_eq!(s.status, "ok");
    assert!(s.latency_ok);
}
