//! Property-based tests for the scenario-suite generators (ISSUE PR 8
//! satellite): the Zipf sampler's empirical rank-frequency matches the
//! theoretical law, and both samplers and arrival curves are
//! byte-deterministic under a fixed seed.

use oprc_simcore::{SimDuration, SimRng, SimTime};
use oprc_workloads::scenario::{RateCurve, ZipfSampler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Empirical rank frequencies of 10k draws converge on the
    /// precomputed PMF for any domain size and skew, and every
    /// theoretical PMF is a proper, monotone distribution.
    #[test]
    fn zipf_empirical_matches_theoretical(
        seed in any::<u64>(),
        n in 2usize..64,
        s in 0.0f64..2.0,
    ) {
        let z = ZipfSampler::new(n, s);
        let mut pmf_sum = 0.0;
        for rank in 0..n {
            let p = z.theoretical_pmf(rank);
            prop_assert!(p > 0.0);
            if rank > 0 {
                prop_assert!(p <= z.theoretical_pmf(rank - 1) + 1e-12);
            }
            pmf_sum += p;
        }
        prop_assert!((pmf_sum - 1.0).abs() < 1e-9);

        let mut rng = SimRng::seed_from_u64(seed);
        const DRAWS: usize = 10_000;
        let mut counts = vec![0u32; n];
        for _ in 0..DRAWS {
            counts[z.sample(&mut rng)] += 1;
        }
        // Tolerance ~4σ of a binomial proportion at 10k draws: tight
        // enough to catch an off-by-one in the CDF search, loose enough
        // to never flake across the seed space.
        for (rank, &count) in counts.iter().enumerate() {
            let p = z.theoretical_pmf(rank);
            let sigma = (p * (1.0 - p) / DRAWS as f64).sqrt();
            let got = f64::from(count) / DRAWS as f64;
            prop_assert!(
                (got - p).abs() <= 4.0 * sigma + 1e-3,
                "rank {} of {n} (s={s:.2}): empirical {got:.4} vs pmf {p:.4}",
                rank
            );
        }
    }

    /// Same seed ⇒ byte-identical draw sequence; and each draw consumes
    /// exactly one variate, so prefixes agree too.
    #[test]
    fn zipf_same_seed_is_byte_identical(
        seed in any::<u64>(),
        n in 1usize..64,
        s in 0.0f64..2.0,
    ) {
        let z = ZipfSampler::new(n, s);
        let draw = |count: usize| -> Vec<usize> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..count).map(|_| z.sample(&mut rng)).collect()
        };
        let a = draw(256);
        let b = draw(256);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a[..64], &draw(64)[..]);
        for &rank in &a {
            prop_assert!(rank < n);
        }
    }

    /// Arrival generation: sorted, strictly inside the horizon,
    /// deterministic, and with a count consistent with the curve's
    /// integrated rate (loose Poisson bound).
    #[test]
    fn arrivals_are_sorted_bounded_and_deterministic(
        seed in any::<u64>(),
        rate in 1.0f64..60.0,
        spike in 1.0f64..200.0,
        secs in 2u64..20,
    ) {
        let duration = SimDuration::from_secs(secs);
        let curve = RateCurve::FlashCrowd {
            base: rate,
            spike_rate: spike,
            spike_start: SimDuration::from_secs(secs / 2),
            spike_duration: SimDuration::from_secs(1),
        };
        let gen = || {
            let mut rng = SimRng::seed_from_u64(seed);
            curve.arrivals(SimTime::ZERO, duration, &mut rng)
        };
        let a = gen();
        prop_assert_eq!(&a, &gen());
        for w in a.windows(2) {
            prop_assert!(w[0] < w[1], "arrivals must be strictly increasing");
        }
        if let (Some(first), Some(last)) = (a.first(), a.last()) {
            prop_assert!(*first > SimTime::ZERO);
            prop_assert!(*last < SimTime::ZERO + duration);
        }
        // Expected count = ∫rate dt; allow 6σ plus slack for tiny means.
        let expected = rate * (secs as f64 - 1.0) + spike;
        let sigma = expected.sqrt();
        prop_assert!(
            (a.len() as f64 - expected).abs() <= 6.0 * sigma + 10.0,
            "got {} arrivals, expected ~{expected:.0}",
            a.len()
        );
    }

    /// The diurnal curve stays within [base, base+amplitude] and its
    /// envelope really is the supremum the thinning sampler assumes.
    #[test]
    fn diurnal_rate_respects_its_envelope(
        base in 0.0f64..50.0,
        amplitude in 0.0f64..100.0,
        period_s in 1u64..300,
        t_ns in any::<u32>(),
    ) {
        let curve = RateCurve::Diurnal {
            base,
            amplitude,
            period: SimDuration::from_secs(period_s),
        };
        let t = SimDuration::from_nanos(u64::from(t_ns) * 1_000);
        let r = curve.rate_at(t);
        prop_assert!(r >= base - 1e-9);
        prop_assert!(r <= curve.max_rate() + 1e-9);
    }
}
