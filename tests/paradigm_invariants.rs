//! Integration: the paradigm-level invariants the paper claims.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::{vjson, Value};

/// §III-C: "the code execution runtime is entirely decoupled from the
/// state management" — a function only ever sees the state snapshot in
/// its task; mutating the snapshot's source after task construction is
/// impossible, and state changes flow back exclusively via the patch.
#[test]
fn pure_function_decoupling() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/probe", |task| {
        // The task is a value: no handles, no store references. Returning
        // no patch must leave state untouched regardless of what the
        // function does to its copy.
        let mut local = task.state_in.value().clone();
        local.insert("attempted", true);
        Ok(TaskResult::output(local))
    });
    p.deploy_yaml(
        "classes:\n  - name: P\n    keySpecs: [v]\n    functions:\n      - name: probe\n        image: img/probe\n",
    )
    .unwrap();
    let id = p.create_object("P", vjson!({"v": 1})).unwrap();
    let out = p.invoke(id, "probe", vec![]).unwrap();
    assert_eq!(out.output["attempted"].as_bool(), Some(true));
    // Platform state unchanged: no patch was returned.
    assert_eq!(p.get_state(id).unwrap(), vjson!({"v": 1}));
}

/// §II-A: polymorphism — the same invocation name dispatches to the
/// subclass override when present, the inherited implementation
/// otherwise.
#[test]
fn polymorphic_dispatch_end_to_end() {
    let base_calls = Arc::new(AtomicU64::new(0));
    let override_calls = Arc::new(AtomicU64::new(0));
    let mut p = EmbeddedPlatform::new();
    let b = base_calls.clone();
    p.register_function("img/greet-base", move |_| {
        b.fetch_add(1, Ordering::SeqCst);
        Ok(TaskResult::output("hello from Base"))
    });
    let o = override_calls.clone();
    p.register_function("img/greet-loud", move |_| {
        o.fetch_add(1, Ordering::SeqCst);
        Ok(TaskResult::output("HELLO FROM LOUD"))
    });
    p.deploy_yaml(
        "
classes:
  - name: Base
    functions:
      - name: greet
        image: img/greet-base
  - name: Quiet
    parent: Base
  - name: Loud
    parent: Base
    functions:
      - name: greet
        image: img/greet-loud
",
    )
    .unwrap();
    let quiet = p.create_object("Quiet", vjson!({})).unwrap();
    let loud = p.create_object("Loud", vjson!({})).unwrap();
    assert_eq!(
        p.invoke(quiet, "greet", vec![]).unwrap().output.as_str(),
        Some("hello from Base")
    );
    assert_eq!(
        p.invoke(loud, "greet", vec![]).unwrap().output.as_str(),
        Some("HELLO FROM LOUD")
    );
    assert_eq!(base_calls.load(Ordering::SeqCst), 1);
    assert_eq!(override_calls.load(Ordering::SeqCst), 1);
}

/// §II-B: "developers can change the flow of invocation without changing
/// the function code, only by changing the dataflow definitions."
#[test]
fn dataflow_rewiring_without_code_change() {
    fn build(flow_yaml: &str) -> EmbeddedPlatform {
        let mut p = EmbeddedPlatform::new();
        // The *same* function registrations for both flow versions.
        p.register_function("img/add1", |t| {
            Ok(TaskResult::output(t.args[0].as_i64().unwrap_or(0) + 1))
        });
        p.register_function("img/double", |t| {
            Ok(TaskResult::output(t.args[0].as_i64().unwrap_or(0) * 2))
        });
        p.deploy_yaml(flow_yaml).unwrap();
        p
    }
    let v1 = "
classes:
  - name: M
    functions:
      - name: add1
        image: img/add1
      - name: double
        image: img/double
    dataflows:
      - name: calc
        steps:
          - id: a
            function: add1
            inputs: [input]
          - id: b
            function: double
            inputs: [\"step:a\"]
";
    // v2 swaps the order — double first, then add1.
    let v2 = v1
        .replace(
            "function: add1\n            inputs: [input]",
            "function: double\n            inputs: [input]",
        )
        .replace(
            "function: double\n            inputs: [\"step:a\"]",
            "function: add1\n            inputs: [\"step:a\"]",
        );

    let p1 = build(v1);
    let id = p1.create_object("M", vjson!({})).unwrap();
    assert_eq!(
        p1.invoke(id, "calc", vec![vjson!(10)])
            .unwrap()
            .output
            .as_i64(),
        Some(22) // (10+1)*2
    );
    let p2 = build(&v2);
    let id = p2.create_object("M", vjson!({})).unwrap();
    assert_eq!(
        p2.invoke(id, "calc", vec![vjson!(10)])
            .unwrap()
            .output
            .as_i64(),
        Some(21) // (10*2)+1
    );
}

/// §II-B: independent dataflow steps genuinely run concurrently.
#[test]
fn dataflow_parallelism_is_real() {
    use std::time::{Duration, Instant};
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/sleepy", |_| {
        std::thread::sleep(Duration::from_millis(30));
        Ok(TaskResult::output(1))
    });
    p.deploy_yaml(
        r#"
classes:
  - name: W
    functions:
      - name: work
        image: img/sleepy
    dataflows:
      - name: wide
        output: a
        steps:
          - id: a
            function: work
          - id: b
            function: work
          - id: c
            function: work
          - id: d
            function: work
"#,
    )
    .unwrap();
    let id = p.create_object("W", vjson!({})).unwrap();
    let started = Instant::now();
    p.invoke(id, "wide", vec![]).unwrap();
    let wall = started.elapsed();
    // Four 30ms steps in one parallel stage: far below the 120ms serial
    // cost (generous bound for CI noise).
    assert!(
        wall < Duration::from_millis(100),
        "parallel stage took {wall:?}"
    );
}

/// NFR inheritance flows into template selection at deploy time.
#[test]
fn nfr_inheritance_drives_template_selection() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/f", |_| Ok(TaskResult::output(1)));
    p.deploy_yaml(
        "
classes:
  - name: Hot
    qos:
      throughput: 5000
    constraint:
      persistent: true
    functions:
      - name: f
        image: img/f
  - name: HotChild
    parent: Hot
",
    )
    .unwrap();
    // The child declared nothing, but inherits throughput 5000 → the
    // high-throughput template.
    assert_eq!(
        p.runtime_spec("HotChild").unwrap().template,
        "high-throughput"
    );
}

/// The object abstraction keeps structured state normalized (no
/// explicit-null members survive a round trip).
#[test]
fn state_normalization_invariant() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/nuller", |_| {
        Ok(TaskResult::output(Value::Null).with_patch(vjson!({"gone": null, "kept": 1})))
    });
    p.deploy_yaml(
        "classes:\n  - name: N\n    functions:\n      - name: f\n        image: img/nuller\n",
    )
    .unwrap();
    let id = p.create_object("N", vjson!({"gone": "soon"})).unwrap();
    p.invoke(id, "f", vec![]).unwrap();
    assert_eq!(p.get_state(id).unwrap(), vjson!({"kept": 1}));
}
