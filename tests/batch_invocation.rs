//! Integration: the shard-grouped batch invocation path.
//!
//! `invoke_batch` must be observationally equivalent to invoking each
//! item sequentially — per-slot results and final object state — while
//! acquiring each touched shard's lock a bounded number of times and
//! committing each dirty object once per group. Under chaos the batch
//! path pins itself to the sequential fallback, so seeded replays stay
//! byte-identical with or without batching.

use oprc_chaos::{FaultPlan, InjectionSite};
use oprc_core::invocation::{TaskError, TaskResult};
use oprc_platform::admission::AdmissionConfig;
use oprc_platform::embedded::{BatchItem, EmbeddedPlatform};
use oprc_platform::PlatformError;
use oprc_value::vjson;
use proptest::prelude::*;

/// A platform with one Counter class: a state-mutating `incr`, a pure
/// `add`, and an always-failing `boom`.
///
/// `armed` adds an availability tier (retries + a class-wide circuit
/// breaker). The strict batch≡sequential proptest runs *unarmed*: the
/// breaker is keyed per class-function and shared across objects, and
/// the batch path executes in shard-group order, so a shared breaker's
/// trip points can legitimately differ from submission order — exactly
/// as they would for concurrent callers. Per-object semantics are
/// unaffected. The chaos suite runs armed: chaos pins the sequential
/// fallback, so the breaker evolves identically there.
fn platform(armed: bool) -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({ "count": n })))
    });
    p.register_function("img/add", |task| {
        let sum: i64 = task.args.iter().filter_map(oprc_value::Value::as_i64).sum();
        Ok(TaskResult::output(sum))
    });
    p.register_function("img/boom", |_| Err(TaskError::Application("boom".into())));
    let qos = if armed {
        "    qos:\n      availability: 0.99\n"
    } else {
        ""
    };
    p.deploy_yaml(&format!(
        "
classes:
  - name: Counter
{qos}    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
      - name: add
        image: img/add
      - name: boom
        image: img/boom
",
    ))
    .unwrap();
    p
}

fn batch_platform() -> EmbeddedPlatform {
    platform(false)
}

/// The three op kinds the equivalence suites mix together.
fn op_call(choice: u8) -> (&'static str, Vec<oprc_value::Value>) {
    match choice % 3 {
        0 => ("incr", vec![]),
        1 => ("add", vec![vjson!(2), vjson!(3)]),
        _ => ("boom", vec![]),
    }
}

proptest! {
    /// Batch ≡ sequential: over an arbitrary mix of objects and
    /// functions (including failures), `invoke_batch` on one platform
    /// produces slot-for-slot the same results and the same final
    /// object states as per-item `invoke` on an identically prepared
    /// platform.
    #[test]
    fn batch_equals_sequential(
        ops in prop::collection::vec((0usize..6, 0u8..3), 0..24),
    ) {
        let a = batch_platform();
        let b = batch_platform();
        let ids_a: Vec<_> = (0..6)
            .map(|_| a.create_object("Counter", vjson!({ "count": 0 })).unwrap())
            .collect();
        let ids_b: Vec<_> = (0..6)
            .map(|_| b.create_object("Counter", vjson!({ "count": 0 })).unwrap())
            .collect();
        prop_assert_eq!(&ids_a, &ids_b, "fresh platforms must mint identical ids");

        let items = ops
            .iter()
            .map(|&(ox, fx)| {
                let (f, args) = op_call(fx);
                BatchItem::new(ids_a[ox], f, args)
            })
            .collect();
        let batched = a.invoke_batch(items);
        let sequential: Vec<_> = ops
            .iter()
            .map(|&(ox, fx)| {
                let (f, args) = op_call(fx);
                b.invoke(ids_b[ox], f, args)
            })
            .collect();
        prop_assert_eq!(batched, sequential);
        for (ia, ib) in ids_a.iter().zip(&ids_b) {
            prop_assert_eq!(a.get_state(*ia).unwrap(), b.get_state(*ib).unwrap());
        }
    }
}

/// Under chaos the batch path degrades to the exact sequential fallback,
/// so a seeded run replays byte-identically whether the caller batched
/// or not: same per-slot outcomes, same final state.
#[test]
fn batch_equals_sequential_under_chaos() {
    for seed in 0..8u64 {
        let mut a = platform(true);
        let mut b = platform(true);
        for p in [&mut a, &mut b] {
            p.enable_chaos(FaultPlan::new(seed).rate_all(0.3).latency_share(0.2));
        }
        let ids_a: Vec<_> = (0..4)
            .map(|_| a.create_object("Counter", vjson!({ "count": 0 })).unwrap())
            .collect();
        let ids_b: Vec<_> = (0..4)
            .map(|_| b.create_object("Counter", vjson!({ "count": 0 })).unwrap())
            .collect();
        let ops: Vec<(usize, u8)> = (0..20).map(|i| (i % 4, (i % 3) as u8)).collect();
        let items = ops
            .iter()
            .map(|&(ox, fx)| {
                let (f, args) = op_call(fx);
                BatchItem::new(ids_a[ox], f, args)
            })
            .collect();
        let batched = a.invoke_batch(items);
        let sequential: Vec<_> = ops
            .iter()
            .map(|&(ox, fx)| {
                let (f, args) = op_call(fx);
                b.invoke(ids_b[ox], f, args)
            })
            .collect();
        assert_eq!(batched, sequential, "seed {seed} diverged under chaos");
        for (ia, ib) in ids_a.iter().zip(&ids_b) {
            assert_eq!(
                a.get_state(*ia).unwrap(),
                b.get_state(*ib).unwrap(),
                "seed {seed} left divergent state"
            );
        }
    }
}

/// Items naming the same object execute in submission order: each
/// `incr` observes every earlier item's committed patch even though the
/// group commits to the store only once.
#[test]
fn same_object_items_run_in_submission_order() {
    let p = batch_platform();
    let id = p.create_object("Counter", vjson!({ "count": 0 })).unwrap();
    let items = (0..5).map(|_| BatchItem::new(id, "incr", vec![])).collect();
    let outs = p.invoke_batch(items);
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(
            out.as_ref().unwrap().output.as_i64(),
            Some(i as i64 + 1),
            "item {i} did not see its predecessors' writes"
        );
    }
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(5));
}

/// The grouped path takes each touched shard's lock exactly twice (one
/// directory peek, one execution hold), no matter how many items land
/// on the shard; untouched shards are never locked.
#[test]
fn batch_locks_each_touched_shard_twice() {
    let p = batch_platform();
    let ids: Vec<_> = (0..8)
        .map(|_| p.create_object("Counter", vjson!({ "count": 0 })).unwrap())
        .collect();
    let before: Vec<u64> = p.shard_stats().iter().map(|s| s.acquisitions).collect();
    // Three items per object stresses the "once per group, not per
    // item" claim.
    let items = ids
        .iter()
        .flat_map(|id| (0..3).map(|_| BatchItem::new(*id, "incr", vec![])))
        .collect();
    for out in p.invoke_batch(items) {
        out.unwrap();
    }
    let groups = p.metrics().batch_groups_total();
    assert!(groups >= 2, "8 objects should span at least two shards");
    let mut touched = 0;
    for (s, prev) in p.shard_stats().iter().zip(&before) {
        let delta = s.acquisitions - prev;
        assert!(
            delta == 0 || delta == 2,
            "shard {} locked {delta} times during one batch",
            s.shard
        );
        touched += u64::from(delta == 2);
    }
    assert_eq!(touched, groups, "every group locks exactly one shard");
}

/// `invoke_batch_as` charges one admission token per item before any
/// lock: with two tokens and no refill, a three-item batch admits the
/// first two slots and rejects the third in place.
#[test]
fn batch_admission_charges_one_token_per_item() {
    let mut p = batch_platform();
    p.enable_admission(AdmissionConfig::new(0.0, 2.0));
    let id = p.create_object("Counter", vjson!({ "count": 0 })).unwrap();
    let items = (0..3).map(|_| BatchItem::new(id, "incr", vec![])).collect();
    let outs = p.invoke_batch_as("acme", items);
    assert_eq!(outs[0].as_ref().unwrap().output.as_i64(), Some(1));
    assert_eq!(outs[1].as_ref().unwrap().output.as_i64(), Some(2));
    match &outs[2] {
        Err(PlatformError::AdmissionRejected { tenant }) => assert_eq!(tenant, "acme"),
        other => panic!("expected admission rejection, got {other:?}"),
    }
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(2));
}

/// The grouped path feeds the batch counters; the sequential fallbacks
/// (chaos, dataflow items) do not, so the counters measure how much
/// traffic actually amortized.
#[test]
fn batch_counters_track_grouped_path_only() {
    let mut p = batch_platform();
    let id = p.create_object("Counter", vjson!({ "count": 0 })).unwrap();
    let items = (0..4).map(|_| BatchItem::new(id, "incr", vec![])).collect();
    for out in p.invoke_batch(items) {
        out.unwrap();
    }
    assert_eq!(p.metrics().batched_ops_total(), 4);
    assert_eq!(p.metrics().batch_groups_total(), 1);
    // Chaos pins the fallback: counters must not move.
    p.enable_chaos(FaultPlan::new(1).rate(InjectionSite::EngineExecute, 0.0));
    let items = (0..4).map(|_| BatchItem::new(id, "incr", vec![])).collect();
    for out in p.invoke_batch(items) {
        out.unwrap();
    }
    assert_eq!(p.metrics().batched_ops_total(), 4);
    assert_eq!(p.metrics().batch_groups_total(), 1);
}

/// A batch containing a dataflow item falls back to the sequential
/// path for the whole batch — every slot still gets its right answer.
#[test]
fn dataflow_items_fall_back_to_sequential() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({ "count": n })))
    });
    p.register_function("img/add1", |t| {
        Ok(TaskResult::output(t.args[0].as_i64().unwrap_or(0) + 1))
    });
    p.register_function("img/double", |t| {
        Ok(TaskResult::output(t.args[0].as_i64().unwrap_or(0) * 2))
    });
    p.deploy_yaml(
        "
classes:
  - name: M
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
      - name: add1
        image: img/add1
      - name: double
        image: img/double
    dataflows:
      - name: calc
        steps:
          - id: a
            function: add1
            inputs: [input]
          - id: b
            function: double
            inputs: [\"step:a\"]
",
    )
    .unwrap();
    let id = p.create_object("M", vjson!({ "count": 0 })).unwrap();
    let outs = p.invoke_batch(vec![
        BatchItem::new(id, "incr", vec![]),
        BatchItem::new(id, "calc", vec![vjson!(10)]),
        BatchItem::new(id, "incr", vec![]),
    ]);
    assert_eq!(outs[0].as_ref().unwrap().output.as_i64(), Some(1));
    // (10 + 1) * 2 — the flow ran even though it arrived in a batch.
    assert_eq!(outs[1].as_ref().unwrap().output.as_i64(), Some(22));
    assert_eq!(outs[2].as_ref().unwrap().output.as_i64(), Some(2));
    assert_eq!(
        p.metrics().batched_ops_total(),
        0,
        "fallback must not count as batched"
    );
}

/// The degenerate cases: an empty batch returns an empty vec, and a
/// batch naming an unknown object fails only in that slot.
#[test]
fn empty_and_partially_invalid_batches() {
    let p = batch_platform();
    assert!(p.invoke_batch(Vec::new()).is_empty());
    let id = p.create_object("Counter", vjson!({ "count": 0 })).unwrap();
    let bogus = oprc_core::object::ObjectId(9_999);
    let outs = p.invoke_batch(vec![
        BatchItem::new(id, "incr", vec![]),
        BatchItem::new(bogus, "incr", vec![]),
        BatchItem::new(id, "nope", vec![]),
    ]);
    assert_eq!(outs[0].as_ref().unwrap().output.as_i64(), Some(1));
    assert!(matches!(outs[1], Err(PlatformError::UnknownObject(_))));
    assert!(matches!(
        outs[2],
        Err(PlatformError::Core(
            oprc_core::CoreError::UnknownFunction { .. }
        ))
    ));
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));
}
