//! Property: the flow compiler is semantics-preserving. For any random
//! DAG dataflow, running it through the optimized compiled plan
//! (dead-stage elimination + fusion + parallel stages) produces the
//! same flow output and the same final object state as running the
//! identical flow with the fusion pass disabled — with the same or
//! fewer state commits. Plus: chaos runs (which take the interpreted
//! engine) replay byte-identically, so fusion never leaks into the
//! deterministic fault-injection goldens.

use oprc_chaos::FaultPlan;
use oprc_core::dataflow::{DataflowSpec, StepSpec};
use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_telemetry::TelemetryConfig;
use oprc_value::{vjson, Value};
use proptest::prelude::*;

/// Strategy: a random DAG dataflow where step `i` depends on a subset
/// of earlier steps (or the flow input when the subset is empty); the
/// flow output is the last step.
fn arb_dataflow() -> impl Strategy<Value = DataflowSpec> {
    prop::collection::vec(prop::collection::vec(any::<u16>(), 0..3), 2..7).prop_map(|deps| {
        let n = deps.len();
        let mut df = DataflowSpec::new("flow");
        for (i, picks) in deps.into_iter().enumerate() {
            let mut step = StepSpec::new(format!("s{i}"), "f");
            let mut used = std::collections::BTreeSet::new();
            for p in picks {
                if i > 0 {
                    used.insert(p as usize % i);
                }
            }
            if used.is_empty() {
                step = step.from_input();
            }
            for t in used {
                step = step.from_step(format!("s{t}"));
            }
            df = df.step(step);
        }
        df.output_from(format!("s{}", n - 1))
    })
}

/// Deploys `df` on a fresh platform whose single function is pure in
/// (state, args): output = 1 + Σ numeric args, state `n` accumulates
/// the outputs. Any reordering or batching the optimizer gets wrong
/// shows up in either the flow output or the committed state.
fn platform_with(df: &DataflowSpec, fuse: bool) -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/f", |t| {
        let s: i64 = t.args.iter().filter_map(Value::as_i64).sum();
        let out = s + 1;
        let n = t.state_in["n"].as_i64().unwrap_or(0) + out;
        Ok(TaskResult::output(out).with_patch(vjson!({"n": n})))
    });
    let mut yaml = String::from(
        "classes:\n  - name: Doc\n    keySpecs: [n]\n    functions:\n      - name: f\n        image: img/f\n    dataflows:\n      - name: flow\n        output: ",
    );
    yaml.push_str(df.output.as_deref().unwrap());
    yaml.push_str("\n        steps:\n");
    for step in &df.steps {
        yaml.push_str(&format!(
            "          - id: {}\n            function: f\n            inputs: [{}]\n",
            step.id,
            step.inputs
                .iter()
                .map(|r| match r {
                    oprc_core::dataflow::DataRef::Input => "input".to_string(),
                    oprc_core::dataflow::DataRef::Step { step, .. } => format!("\"step:{step}\""),
                    oprc_core::dataflow::DataRef::Const(_) => unreachable!("not generated"),
                })
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if !fuse {
        let mut p2 = p;
        p2.deploy_yaml(&yaml).expect("random DAG deploys");
        p2.set_flow_fusion(false).expect("recompiles unfused");
        return p2;
    }
    p.deploy_yaml(&yaml).expect("random DAG deploys");
    p
}

fn run(p: &EmbeddedPlatform, arg: i64) -> (Value, Value, u64) {
    let id = p.create_object("Doc", vjson!({})).expect("creates");
    let before = p.metrics().commits_total();
    let out = p.invoke(id, "flow", vec![vjson!(arg)]).expect("flow runs");
    let commits = p.metrics().commits_total() - before;
    (out.output, p.get_state(id).expect("state"), commits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled-optimized ≡ fusion-disabled: same output, same final
    /// state, never more commits.
    #[test]
    fn optimized_flow_equals_interpreted(df in arb_dataflow(), arg in -100i64..100) {
        let p_on = platform_with(&df, true);
        let p_off = platform_with(&df, false);
        let (out_on, state_on, commits_on) = run(&p_on, arg);
        let (out_off, state_off, commits_off) = run(&p_off, arg);
        prop_assert_eq!(out_on, out_off);
        prop_assert_eq!(state_on, state_off);
        prop_assert!(
            commits_on <= commits_off,
            "optimizer added commits: {} > {}", commits_on, commits_off
        );
    }
}

/// Chaos runs route through the interpreted engine, so seeded fault
/// injection over a fusable chain stays byte-for-byte reproducible.
#[test]
fn seeded_chaos_replay_is_byte_identical() {
    let run = || {
        let mut p = EmbeddedPlatform::new();
        p.register_function("img/f", |t| {
            let x = t.args.first().and_then(Value::as_i64).unwrap_or(0);
            let n = t.state_in["n"].as_i64().unwrap_or(0) + 1;
            Ok(TaskResult::output(x + 1).with_patch(vjson!({"n": n})))
        });
        p.enable_telemetry(TelemetryConfig::default());
        p.deploy_yaml(
            "
classes:
  - name: Doc
    qos:
      availability: 0.99
    keySpecs: [n]
    functions:
      - name: f
        image: img/f
    dataflows:
      - name: chain
        output: c
        steps:
          - id: a
            function: f
            inputs: [input]
          - id: b
            function: f
            inputs: [\"step:a\"]
          - id: c
            function: f
            inputs: [\"step:b\"]
",
        )
        .expect("deploys");
        p.enable_chaos(FaultPlan::new(42).rate_all(0.25).latency_share(0.3));
        let id = p.create_object("Doc", vjson!({})).expect("creates");
        for _ in 0..16 {
            let _ = p.invoke(id, "chain", vec![vjson!(5)]);
        }
        (p.telemetry().export_jsonl(), p.get_state(id).unwrap())
    };
    let (jsonl_a, state_a) = run();
    let (jsonl_b, state_b) = run();
    assert_eq!(jsonl_a, jsonl_b, "chaos replay must be byte-identical");
    assert_eq!(state_a, state_b);
    assert_eq!(
        jsonl_a.matches("dataflow.fused").count(),
        0,
        "chaos runs take the interpreted engine"
    );
}
