//! Integration: the Fig. 3 experiment at reduced scale — the shape the
//! paper reports must hold, deterministically.

use oprc_platform::sim::{self, ExperimentConfig, SystemVariant};
use oprc_simcore::SimDuration;

fn quick(variant: SystemVariant, vms: u32) -> ExperimentConfig {
    ExperimentConfig {
        warmup: SimDuration::from_secs(5),
        measure: SimDuration::from_secs(6),
        clients_per_vm: 30,
        ..ExperimentConfig::fig3(variant, vms)
    }
}

#[test]
fn full_sweep_shape() {
    let mut results = std::collections::BTreeMap::new();
    for vms in [3u32, 6, 12] {
        for variant in SystemVariant::all() {
            let r = sim::run(quick(variant, vms));
            results.insert((variant.label(), vms), r.throughput);
        }
    }
    let t = |v: SystemVariant, n: u32| results[&(v.label(), n)];

    // Knative scales 3→6 then plateaus.
    assert!(t(SystemVariant::Knative, 6) > t(SystemVariant::Knative, 3) * 1.5);
    let kn6 = t(SystemVariant::Knative, 6);
    let kn12 = t(SystemVariant::Knative, 12);
    assert!(
        kn12 < kn6 * 1.15 && kn12 > kn6 * 0.75,
        "plateau: {kn6} vs {kn12}"
    );

    // Every oprc variant keeps scaling 6→12.
    for v in [
        SystemVariant::Oprc,
        SystemVariant::OprcBypass,
        SystemVariant::OprcBypassNonPersist,
    ] {
        assert!(
            t(v, 12) > t(v, 6) * 1.3,
            "{} should keep scaling: {} vs {}",
            v.label(),
            t(v, 6),
            t(v, 12)
        );
    }

    // Ordering at 12 VMs: knative < oprc ≤ bypass ≤ nonpersist.
    assert!(t(SystemVariant::Knative, 12) < t(SystemVariant::Oprc, 12));
    assert!(t(SystemVariant::Oprc, 12) <= t(SystemVariant::OprcBypass, 12) * 1.05);
    assert!(t(SystemVariant::OprcBypass, 12) <= t(SystemVariant::OprcBypassNonPersist, 12) * 1.02);
}

#[test]
fn batching_is_the_mechanism() {
    // Degrade oprc's batch size to 1 → it loses most of its advantage
    // over knative, confirming the paper's causal story (§V: batched
    // writes are why Oparaca scales).
    let mut degraded = quick(SystemVariant::Oprc, 12);
    degraded.write_behind.max_batch = 1;
    let degraded = sim::run(degraded).throughput;
    let batched = sim::run(quick(SystemVariant::Oprc, 12)).throughput;
    assert!(
        batched > degraded * 1.3,
        "batch=100 {batched:.0}/s vs batch=1 {degraded:.0}/s"
    );
}

#[test]
fn results_are_deterministic_across_processes_worth_of_state() {
    let a = sim::run(quick(SystemVariant::OprcBypass, 6));
    let b = sim::run(quick(SystemVariant::OprcBypass, 6));
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.db_batch_writes, b.db_batch_writes);
    assert_eq!(a.consolidated, b.consolidated);
}

#[test]
fn different_seeds_differ_but_agree_qualitatively() {
    // Exponential service times make per-seed traces genuinely differ
    // (with constant service the closed loop is capacity-bound and the
    // completion count is seed-independent).
    let variable = |seed: u64| {
        let mut c = quick(SystemVariant::Oprc, 6);
        c.seed = seed;
        c.service_time = oprc_simcore::Dist::Exponential { mean: 0.004 };
        c
    };
    let r1 = sim::run(variable(1));
    let r2 = sim::run(variable(2));
    assert_ne!(
        r1.completed, r2.completed,
        "different seeds → different traces"
    );
    let rel = (r1.throughput - r2.throughput).abs() / r1.throughput;
    assert!(rel < 0.05, "seeds should not change the story: {rel:.3}");
}

#[test]
fn capacity_comes_from_the_cluster_scheduler() {
    // 12 VMs × 4 pods = 48 replicas ceiling, discovered by actually
    // scheduling pods on the simulated cluster.
    let r = sim::run(quick(SystemVariant::OprcBypass, 12));
    assert_eq!(r.replicas, 48);
    let r = sim::run(quick(SystemVariant::OprcBypass, 3));
    assert_eq!(r.replicas, 12);
}

#[test]
fn knative_cold_starts_only_on_knative_paths() {
    let kn = sim::run(quick(SystemVariant::Knative, 3));
    assert!(kn.cold_starts > 0);
    let by = sim::run(quick(SystemVariant::OprcBypass, 3));
    assert_eq!(by.cold_starts, 0, "pre-scaled deployments never cold start");
}
