//! Integration: snapshot-based migration (§II-C portability).

use bytes::Bytes;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::PlatformError;
use oprc_tests::counter_platform;
use oprc_value::{json, vjson};
use oprc_workloads::image;

#[test]
fn structured_state_migrates_and_keeps_working() {
    let a = counter_platform();
    let ids: Vec<_> = (0..5)
        .map(|i| {
            a.create_object("Counter", vjson!({ "count": (i as i64 * 10) }))
                .unwrap()
        })
        .collect();
    for &id in &ids {
        a.invoke(id, "incr", vec![]).unwrap();
    }

    let snapshot = a.export_snapshot(false);
    // Snapshot survives JSON serialization (what a real wire would do).
    let snapshot = json::parse(&json::to_string(&snapshot)).unwrap();

    let b = counter_platform();
    assert_eq!(b.import_snapshot(&snapshot).unwrap(), 5);
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(
            b.get_state(id).unwrap()["count"].as_i64(),
            Some(i as i64 * 10 + 1)
        );
        // Migrated objects accept new invocations.
        let out = b.invoke(id, "incr", vec![]).unwrap();
        assert_eq!(out.output.as_i64(), Some(i as i64 * 10 + 2));
    }
    // New objects on B don't collide with migrated ids.
    let fresh = b.create_object("Counter", vjson!({})).unwrap();
    assert!(fresh.as_u64() >= 5);
}

#[test]
fn files_migrate_with_payloads() {
    let mut a = EmbeddedPlatform::new();
    image::install(&mut a).unwrap();
    let id = a.create_object("Image", vjson!({})).unwrap();
    let url = a.upload_url(id, "image").unwrap();
    a.upload(&url, image::generate_image(16, 8, 1), "image/raw")
        .unwrap();
    let etag_a = a.file_ref(id, "image").unwrap().etag.clone();

    let snapshot = a.export_snapshot(true);
    let mut b = EmbeddedPlatform::new();
    image::install(&mut b).unwrap();
    b.import_snapshot(&snapshot).unwrap();

    let fref = b.file_ref(id, "image").unwrap();
    assert_eq!(fref.etag, etag_a);
    let dl = b.download_url(id, "image").unwrap();
    let obj = b.download(&dl).unwrap();
    assert_eq!(obj.data.len(), 4 + 16 * 8);
    assert_eq!(obj.meta.content_type, "image/raw");
}

#[test]
fn snapshot_without_files_keeps_refs_only() {
    let mut a = EmbeddedPlatform::new();
    image::install(&mut a).unwrap();
    let id = a.create_object("Image", vjson!({})).unwrap();
    let url = a.upload_url(id, "image").unwrap();
    a.upload(
        &url,
        Bytes::from_static(b"\x00\x01\x00\x01\x7f"),
        "image/raw",
    )
    .unwrap();

    let snapshot = a.export_snapshot(false);
    let mut b = EmbeddedPlatform::new();
    image::install(&mut b).unwrap();
    b.import_snapshot(&snapshot).unwrap();
    // The reference migrated, the payload did not.
    assert!(b.file_ref(id, "image").is_some());
    let dl = b.download_url(id, "image").unwrap();
    assert!(
        b.download(&dl).is_err(),
        "payload intentionally not carried"
    );
}

#[test]
fn import_requires_deployed_classes() {
    let a = counter_platform();
    a.create_object("Counter", vjson!({})).unwrap();
    let snapshot = a.export_snapshot(false);
    // Target platform without the application package:
    let b = EmbeddedPlatform::new();
    assert!(matches!(
        b.import_snapshot(&snapshot),
        Err(PlatformError::Core(_))
    ));
}

#[test]
fn malformed_snapshots_rejected() {
    let b = counter_platform();
    assert!(b
        .import_snapshot(&vjson!({"format": "something-else"}))
        .is_err());
    assert!(b
        .import_snapshot(&vjson!({"format": "oprc-snapshot/1"}))
        .is_err());
    assert!(b
        .import_snapshot(&vjson!({
            "format": "oprc-snapshot/1",
            "objects": [{"class": "Counter"}],
        }))
        .is_err());
}
