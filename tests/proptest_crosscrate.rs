//! Property-based integration tests across parsing, resolution, the
//! dataflow planner, and the chaos retry layer.

use oprc_chaos::RetryPolicy;
use oprc_core::dataflow::{DataflowSpec, StepSpec};
use oprc_core::hierarchy::ClassHierarchy;
use oprc_core::{parse, ClassDef, FunctionDef};
use oprc_simcore::SimDuration;
use proptest::prelude::*;

/// Strategy: a forest of classes where class `i` may have any class
/// `j < i` as parent — always acyclic and resolvable.
fn arb_class_defs() -> impl Strategy<Value = Vec<ClassDef>> {
    prop::collection::vec(
        (
            prop::collection::vec("[a-z]{1,8}", 0..4), // function names
            any::<bool>(),                             // has parent
            any::<u16>(),                              // parent pick
        ),
        1..8,
    )
    .prop_map(|specs| {
        let mut defs = Vec::new();
        for (i, (fns, has_parent, pick)) in specs.into_iter().enumerate() {
            let mut def = ClassDef::new(format!("C{i}"));
            if has_parent && i > 0 {
                def = def.parent(format!("C{}", pick as usize % i));
            }
            let mut seen = std::collections::BTreeSet::new();
            for f in fns {
                if seen.insert(f.clone()) {
                    def = def.function(FunctionDef::new(f.clone(), format!("img/{f}")));
                }
            }
            defs.push(def);
        }
        defs
    })
}

/// Strategy: a random DAG dataflow where step `i` depends on a subset of
/// earlier steps.
fn arb_dataflow() -> impl Strategy<Value = DataflowSpec> {
    prop::collection::vec(prop::collection::vec(any::<u16>(), 0..3), 1..8).prop_map(|deps| {
        let mut df = DataflowSpec::new("flow");
        for (i, picks) in deps.into_iter().enumerate() {
            let mut step = StepSpec::new(format!("s{i}"), "f");
            if i == 0 {
                step = step.from_input();
            }
            let mut used = std::collections::BTreeSet::new();
            for p in picks {
                if i > 0 {
                    let target = p as usize % i;
                    if used.insert(target) {
                        step = step.from_step(format!("s{target}"));
                    }
                }
            }
            df = df.step(step);
        }
        df
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every acyclic class forest resolves, and every resolved class
    /// sees exactly the union of its ancestors' functions (children
    /// winning on name).
    #[test]
    fn hierarchy_resolution_is_total_and_flattening(defs in arb_class_defs()) {
        let h = ClassHierarchy::resolve(&defs).unwrap();
        for def in &defs {
            let rc = h.class(&def.name).unwrap();
            // Walk the chain manually and collect expected functions.
            let mut expected = std::collections::BTreeMap::new();
            let mut chain = vec![def];
            let mut cur = def;
            while let Some(parent) = &cur.parent {
                cur = defs.iter().find(|d| &d.name == parent).unwrap();
                chain.push(cur);
            }
            for class in chain.iter().rev() {
                for f in &class.functions {
                    expected.insert(f.name.clone(), class.name.clone());
                }
            }
            let got: Vec<&str> = rc.function_names();
            prop_assert_eq!(got.len(), expected.len());
            for (name, owner) in &expected {
                let (dispatched_owner, _) = rc.dispatch(name).unwrap();
                prop_assert_eq!(dispatched_owner, owner.as_str());
            }
            // Subtype relation matches the chain.
            for class in &chain {
                prop_assert!(rc.is_subclass_of(&class.name));
            }
        }
    }

    /// Random DAG dataflows always validate, and the stage plan is a
    /// correct topological grouping: every dependency lives in an
    /// earlier stage, and stages partition the steps.
    #[test]
    fn dataflow_stages_are_topological(df in arb_dataflow()) {
        df.validate().unwrap();
        let stages = df.stages();
        let mut stage_of = std::collections::BTreeMap::new();
        for (k, stage) in stages.iter().enumerate() {
            for s in stage {
                stage_of.insert(s.id.clone(), k);
            }
        }
        prop_assert_eq!(stage_of.len(), df.steps.len());
        for step in &df.steps {
            for input in &step.inputs {
                if let oprc_core::dataflow::DataRef::Step { step: dep, .. } = input {
                    prop_assert!(
                        stage_of[dep] < stage_of[&step.id],
                        "dep {} (stage {}) not before {} (stage {})",
                        dep, stage_of[dep], &step.id, stage_of[&step.id]
                    );
                }
            }
        }
    }

    /// The retry backoff sequence is monotone non-decreasing, bounded
    /// by the policy deadline, and byte-identical across runs for a
    /// fixed seed — the properties the chaos layer's reproducibility
    /// contract rests on.
    #[test]
    fn backoff_sequence_is_monotone_bounded_and_reproducible(
        seed in any::<u64>(),
        base_ms in 1_u64..200,
        multiplier in 1.0_f64..4.0,
        cap_ms in 1_u64..2_000,
        jitter in 0.0_f64..0.5,
        deadline_ms in 1_u64..10_000,
    ) {
        let policy = RetryPolicy {
            base_backoff: SimDuration::from_millis(base_ms),
            multiplier,
            max_backoff: SimDuration::from_millis(cap_ms),
            jitter,
            deadline: SimDuration::from_millis(deadline_ms),
            ..RetryPolicy::default()
        };
        let a: Vec<SimDuration> = policy.backoff_seq(seed).take(16).collect();
        let b: Vec<SimDuration> = policy.backoff_seq(seed).take(16).collect();
        // Byte-identical replay: the rendered sequence, not just the
        // values, matches.
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        for w in a.windows(2) {
            prop_assert!(w[0] <= w[1], "backoff shrank: {:?}", a);
        }
        for d in &a {
            prop_assert!(*d <= policy.deadline, "backoff exceeds deadline: {:?}", a);
        }
        // A different seed with jitter enabled eventually diverges (the
        // sequences may share early capped values, so compare wholesale
        // only when jitter can matter).
        if jitter > 0.01 {
            let c: Vec<SimDuration> = policy.backoff_seq(seed ^ 0x5DEE_CE66).take(16).collect();
            // Not a strict inequality for every element — but the full
            // sequence matching is vanishingly unlikely unless every
            // delay is pinned by the deadline or monotone clamp.
            if c == a {
                prop_assert!(
                    a.iter().all(|d| *d == policy.deadline) || a.windows(2).all(|w| w[0] == w[1]),
                    "distinct seeds produced identical unclamped sequences"
                );
            }
        }
    }

    /// Class definitions survive a YAML round trip through the parser
    /// (names, parents, function lists).
    #[test]
    fn yaml_round_trip_of_generated_packages(defs in arb_class_defs()) {
        // Emit YAML by hand from the defs, parse, and compare structure.
        let mut yaml = String::from("classes:\n");
        for def in &defs {
            yaml.push_str(&format!("  - name: {}\n", def.name));
            if let Some(p) = &def.parent {
                yaml.push_str(&format!("    parent: {p}\n"));
            }
            if !def.functions.is_empty() {
                yaml.push_str("    functions:\n");
                for f in &def.functions {
                    yaml.push_str(&format!("      - name: {}\n        image: {}\n", f.name, f.image));
                }
            }
        }
        let pkg = parse::package_from_yaml(&yaml).unwrap();
        prop_assert_eq!(pkg.classes.len(), defs.len());
        for (parsed, original) in pkg.classes.iter().zip(&defs) {
            prop_assert_eq!(&parsed.name, &original.name);
            prop_assert_eq!(&parsed.parent, &original.parent);
            prop_assert_eq!(parsed.functions.len(), original.functions.len());
            for (pf, of) in parsed.functions.iter().zip(&original.functions) {
                prop_assert_eq!(&pf.name, &of.name);
                prop_assert_eq!(&pf.image, &of.image);
            }
        }
    }
}
