//! Property-based tests for the static analyzer: it must never panic,
//! even on arbitrarily malformed packages, and its Error verdicts must
//! agree with the platform — a package that deploys cleanly through the
//! `EmbeddedPlatform` carries zero error-severity diagnostics.

use oprc_analyzer::{analyze, LintConfig, Severity};
use oprc_core::dataflow::{DataRef, DataflowSpec, StepSpec};
use oprc_core::{ClassDef, FunctionDef, KeySpec, OPackage};
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::vjson;
use proptest::prelude::*;

/// Strategy: an arbitrary (often broken) package. Step references may
/// dangle or cycle, parents may be unknown, functions may collide, keys
/// may duplicate — the analyzer has to survive all of it.
fn arb_hostile_package() -> impl Strategy<Value = OPackage> {
    let step = (
        "[a-c]{0,2}",                             // step id (possibly empty/duplicate)
        "[f-h]{1,2}",                             // function name
        prop::collection::vec(any::<u8>(), 0..3), // input refs
        any::<bool>(),                            // has target
    );
    let flow = ("[d-e]{0,2}", prop::collection::vec(step, 0..5));
    let class = (
        prop::collection::vec("[f-h]{1,2}", 0..3), // function names
        prop::collection::vec("[k-m]{1,2}", 0..3), // key names
        (any::<bool>(), 0..6u8),                   // parent pick (may dangle)
        prop::collection::vec(flow, 0..3),
    );
    prop::collection::vec(class, 0..5).prop_map(|classes| {
        let mut pkg = OPackage::new("hostile");
        for (ci, (fns, keys, (has_parent, parent), flows)) in classes.into_iter().enumerate() {
            let mut def = ClassDef::new(format!("C{ci}"));
            if has_parent {
                // May reference itself, a later class, or nothing.
                def = def.parent(format!("C{parent}"));
            }
            for f in fns {
                def = def.function(FunctionDef::new(f.clone(), format!("img/{f}")));
            }
            for k in keys {
                def = def.key(KeySpec::structured(k).internal());
            }
            for (fi, (name, steps)) in flows.into_iter().enumerate() {
                let mut df = DataflowSpec::new(format!("{name}{fi}"));
                for (id, function, inputs, has_target) in steps {
                    let mut s = StepSpec::new(id, function);
                    for pick in inputs {
                        s = s.from_step(format!("{}", pick % 7)); // often dangling
                    }
                    if has_target {
                        s = s.on_target(DataRef::Const(vjson!(1)));
                    }
                    df = df.step(s);
                }
                def = def.dataflow(df);
            }
            pkg = pkg.class(def);
        }
        pkg
    })
}

/// Strategy: a well-formed single-class package that deploys cleanly.
fn arb_clean_package() -> impl Strategy<Value = OPackage> {
    (
        prop::collection::vec("[a-z]{2,6}", 1..4),
        prop::collection::vec(any::<u8>(), 0..4),
    )
        .prop_map(|(fns, flow_deps)| {
            let mut def = ClassDef::new("Clean").key(KeySpec::structured("state"));
            let mut names = Vec::new();
            for f in &fns {
                if !names.contains(f) {
                    names.push(f.clone());
                    def = def.function(FunctionDef::new(f.clone(), format!("img/{f}")));
                }
            }
            // A linear dataflow over the defined functions: always
            // resolvable, acyclic, and fully live.
            let mut df = DataflowSpec::new("pipeline");
            for (i, pick) in flow_deps.iter().enumerate() {
                let f = &names[*pick as usize % names.len()];
                let mut s = StepSpec::new(format!("s{i}"), f.clone());
                s = if i == 0 {
                    s.from_input()
                } else {
                    s.from_step(format!("s{}", i - 1))
                };
                df = df.step(s);
            }
            if !df.steps.is_empty() {
                def = def.dataflow(df);
            }
            OPackage::new("clean").class(def)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The analyzer is total: any package the builders can express is
    /// analyzed without panicking, under default and permissive configs.
    #[test]
    fn analyzer_never_panics(pkg in arb_hostile_package()) {
        let report = analyze(&pkg);
        // Rendering and structured output are total too.
        let _ = report.render();
        let _ = report.to_value();
        let permissive = oprc_analyzer::analyze_with(
            &pkg,
            &oprc_core::template::TemplateCatalog::standard(),
            &LintConfig::permissive(),
        );
        prop_assert_eq!(permissive.count(Severity::Error), 0);
    }

    /// Soundness of the gate: whatever deploys cleanly through the
    /// embedded platform has zero error-severity diagnostics. (This
    /// holds by construction now that deployment lints first; the
    /// property pins it against future drift.)
    #[test]
    fn clean_deployment_implies_no_error_diagnostics(pkg in arb_clean_package()) {
        let report = analyze(&pkg);
        let platform = EmbeddedPlatform::new();
        match platform.deploy_package(pkg) {
            Ok(()) => prop_assert_eq!(
                report.count(Severity::Error), 0, "deployed but linted: {}", report.render()
            ),
            Err(e) => {
                // The generator aims for clean packages; if one is
                // rejected, it must be the lint gate agreeing with the
                // report, not a post-gate failure.
                prop_assert!(report.has_errors(), "rejected without diagnostics: {e}");
            }
        }
    }
}
