//! Chaos conformance suite: deterministic fault injection across the
//! invocation plane.
//!
//! The contract under test (ISSUE PR 3): a seed-driven [`FaultPlan`]
//! produces a *byte-reproducible* chaos run — same seed ⇒ identical
//! fault schedule, retry spans, and final state — while the retry layer
//! keeps state commits exactly-once via the task idempotency key.

use oprc_chaos::{FaultKind, FaultPlan, InjectionSite, RetryPolicy};
use oprc_core::invocation::{TaskError, TaskResult};
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::PlatformError;
use oprc_simcore::SimDuration;
use oprc_telemetry::{to_jsonl, TelemetryConfig};
use oprc_value::vjson;

/// A platform with one persistent `Counter` class whose availability
/// tier (0.99 → 3 attempts) arms the retry layer.
fn retrying_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |t| {
        let n = t.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Counter
    qos:
      availability: 0.99
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
",
    )
    .unwrap();
    p
}

/// Runs `n` invocations under a probabilistic plan and returns
/// `(jsonl trace export, outcomes, final count)`.
fn chaos_run(seed: u64, n: usize) -> (String, Vec<bool>, i64) {
    let mut p = retrying_platform();
    p.enable_telemetry(TelemetryConfig::default());
    p.enable_chaos(FaultPlan::new(seed).rate_all(0.25).latency_share(0.3));
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    let outcomes: Vec<bool> = (0..n)
        .map(|_| p.invoke(id, "incr", vec![]).is_ok())
        .collect();
    let count = p.get_state(id).unwrap()["count"].as_i64().unwrap();
    (to_jsonl(&p.telemetry().finished()), outcomes, count)
}

#[test]
fn same_seed_is_byte_identical_different_seed_is_not() {
    let (trace_a, outcomes_a, count_a) = chaos_run(7, 40);
    let (trace_b, outcomes_b, count_b) = chaos_run(7, 40);
    assert_eq!(trace_a, trace_b, "same seed must replay byte-identically");
    assert_eq!(outcomes_a, outcomes_b);
    assert_eq!(count_a, count_b);

    let (trace_c, outcomes_c, _) = chaos_run(8, 40);
    assert_ne!(
        trace_a, trace_c,
        "a different seed must produce a different fault schedule"
    );
    // Not just formatting noise: the actual success/failure pattern
    // differs.
    assert_ne!(outcomes_a, outcomes_c);
}

#[test]
fn no_invocation_both_errors_and_commits() {
    // The exactly-once contract, observed externally: every invocation
    // either succeeds and bumps the counter once, or fails and leaves
    // it untouched. Torn commit faults would break this without the
    // idempotency guard (state applied + error reported).
    for seed in [1_u64, 2, 3, 4, 5] {
        let mut p = retrying_platform();
        p.enable_chaos(FaultPlan::new(seed).rate_all(0.3).latency_share(0.2));
        let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
        let mut expect = 0_i64;
        for i in 0..60 {
            let out = p.invoke(id, "incr", vec![]);
            if out.is_ok() {
                expect += 1;
            }
            let got = p.get_state(id).unwrap()["count"].as_i64().unwrap();
            assert_eq!(
                got, expect,
                "seed {seed} invocation {i}: error and commit must be exclusive"
            );
        }
    }
}

#[test]
fn every_injection_site_fires_when_scripted() {
    // One scripted error per site; `storage.presign` needs a file key,
    // so this class carries one (making every site reachable).
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/noop", |_| Ok(TaskResult::output(1)));
    p.deploy_yaml(
        "
classes:
  - name: Filer
    constraint:
      persistent: true
    keySpecs:
      - name: blob
        type: file
    functions:
      - name: noop
        image: img/noop
",
    )
    .unwrap();
    let id = p.create_object("Filer", vjson!({})).unwrap();
    for site in InjectionSite::ALL {
        let plan = FaultPlan::new(0).script(site, 0, FaultKind::Error);
        p.enable_chaos(plan);
        let err = p.invoke(id, "noop", vec![]).unwrap_err();
        match err {
            PlatformError::FaultInjected { site: s, kind } => {
                assert_eq!(s, site.as_str());
                assert_eq!(kind, "error");
            }
            other => panic!("expected injected fault at {site}, got {other}"),
        }
        assert_eq!(
            p.chaos().injected_totals().get(&site).copied(),
            Some(1),
            "site {site} never consulted"
        );
        p.disable_chaos();
        // The class has no availability NFR: one attempt, so the
        // injected error surfaces directly.
        assert!(p.invoke(id, "noop", vec![]).is_ok());
    }
}

#[test]
fn torn_commit_on_retried_task_never_double_applies() {
    // Attempt 1 commits but the ack is lost (torn); the retry must
    // detect the committed idempotency key and skip re-applying.
    let mut p = retrying_platform();
    p.enable_telemetry(TelemetryConfig::default());
    p.enable_chaos(FaultPlan::new(3).script(InjectionSite::StateCommit, 0, FaultKind::Torn));
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    let out = p.invoke(id, "incr", vec![]).unwrap();
    assert_eq!(out.output.as_i64(), Some(1));
    assert_eq!(
        p.get_state(id).unwrap()["count"].as_i64(),
        Some(1),
        "torn commit + retry must apply state exactly once"
    );
    // The trace shows the mechanism: a torn commit, a backoff, and the
    // skipped re-commit on the retry.
    let spans = p.telemetry().finished();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"chaos.fault"), "{names:?}");
    assert!(names.contains(&"retry.backoff"), "{names:?}");
    assert!(names.contains(&"commit.skipped"), "{names:?}");
    assert!(names.contains(&"invoke.attempt"), "{names:?}");
}

#[test]
fn torn_commit_on_final_attempt_recovers_the_result() {
    // No retries left after the torn commit — but the work *landed*, so
    // the platform recovers the committed result instead of reporting
    // an error for an applied state change (the invariant above).
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |t| {
        let n = t.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Counter
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
",
    )
    .unwrap();
    p.enable_chaos(FaultPlan::new(3).script(InjectionSite::StateCommit, 0, FaultKind::Torn));
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    let out = p.invoke(id, "incr", vec![]).unwrap();
    assert_eq!(out.output.as_i64(), Some(1));
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));
}

#[test]
fn retries_survive_transient_faults_and_are_metered() {
    let mut p = retrying_platform();
    // Two consecutive engine errors, then the third attempt succeeds.
    p.enable_chaos(
        FaultPlan::new(0)
            .script(InjectionSite::EngineExecute, 0, FaultKind::Error)
            .script(InjectionSite::EngineExecute, 1, FaultKind::Error),
    );
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    assert!(p.invoke(id, "incr", vec![]).is_ok());
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));
    let summaries = p.metrics().function_summaries();
    let row = summaries.iter().find(|r| r.function == "incr").unwrap();
    assert_eq!(row.retries, 2);
    assert_eq!(row.errors, 0, "a recovered invocation is not an error");
    assert_eq!(row.breaker.as_str(), "closed");
}

#[test]
fn application_errors_are_not_retried() {
    // Retry only helps transient failures; a deterministic application
    // bug must fail fast without burning attempts.
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/bug", |_| Err(TaskError::Application("bug".into())));
    p.deploy_yaml(
        "
classes:
  - name: Buggy
    qos:
      availability: 0.99
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: f
        image: img/bug
",
    )
    .unwrap();
    p.enable_chaos(FaultPlan::new(0));
    let id = p.create_object("Buggy", vjson!({})).unwrap();
    assert!(p.invoke(id, "f", vec![]).is_err());
    let summaries = p.metrics().function_summaries();
    let row = summaries.iter().find(|r| r.function == "f").unwrap();
    assert_eq!(row.retries, 0);
}

#[test]
fn breaker_opens_after_consecutive_failures_and_half_opens_after_cooldown() {
    let mut p = retrying_platform();
    // Every engine call fails: each invocation exhausts its attempts.
    p.enable_chaos(FaultPlan::new(0).rate(InjectionSite::EngineExecute, 1.0));
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    let policy = p.retry_policy("Counter").unwrap().clone();
    assert!(policy.breaker_threshold > 0);
    // Drive the breaker to its threshold of settled failures.
    let mut rejected_without_attempt = 0;
    for _ in 0..(policy.breaker_threshold + 3) {
        match p.invoke(id, "incr", vec![]) {
            Err(PlatformError::CircuitOpen { .. }) => rejected_without_attempt += 1,
            Err(_) => {}
            Ok(_) => panic!("all engine calls are faulted"),
        }
    }
    assert!(rejected_without_attempt > 0, "breaker never opened");
    assert_eq!(p.breaker_state("Counter", "incr"), Some("open"));

    // Past the cooldown the breaker half-opens and a clean probe closes
    // it again.
    p.disable_chaos();
    p.enable_chaos(FaultPlan::new(0));
    p.advance_chaos_clock(policy.breaker_cooldown + SimDuration::from_millis(1));
    assert!(p.invoke(id, "incr", vec![]).is_ok());
    assert_eq!(p.breaker_state("Counter", "incr"), Some("closed"));
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));
}

#[test]
fn deadline_bounds_the_retry_budget() {
    // latency 100ms × 3 attempts = 300ms deadline. A 350ms latency
    // spike during attempt 1 plus an engine error leaves no room for
    // the backoff → DeadlineExceeded instead of attempt 2.
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |t| {
        let n = t.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Counter
    qos:
      availability: 0.99
      latency: 100
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
",
    )
    .unwrap();
    let policy = p.retry_policy("Counter").unwrap().clone();
    assert_eq!(policy.deadline, SimDuration::from_millis(300));
    p.enable_chaos(
        FaultPlan::new(0)
            .script(
                InjectionSite::StateLoad,
                0,
                FaultKind::Latency(SimDuration::from_millis(350)),
            )
            .script(InjectionSite::EngineExecute, 0, FaultKind::Error),
    );
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    let err = p.invoke(id, "incr", vec![]).unwrap_err();
    assert!(
        matches!(
            err,
            PlatformError::DeadlineExceeded {
                deadline_ms: 300,
                ..
            }
        ),
        "expected DeadlineExceeded, got {err}"
    );
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(0));
}

#[test]
fn nfr_availability_tiers_map_to_policies() {
    for (availability, attempts) in [(0.5, 1_u32), (0.9, 2), (0.99, 3), (0.999, 5), (0.9999, 7)] {
        let mut p = EmbeddedPlatform::new();
        p.register_function("img/noop", |_| Ok(TaskResult::output(1)));
        p.deploy_yaml(&format!(
            "
classes:
  - name: C
    qos:
      availability: {availability}
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: f
        image: img/noop
"
        ))
        .unwrap();
        let policy = p.retry_policy("C").unwrap();
        assert_eq!(
            policy.max_attempts, attempts,
            "availability {availability} maps to {attempts} attempts"
        );
        assert_eq!(policy.breaker_threshold > 0, attempts > 1);
    }
    // No NFR at all: single attempt, no breaker.
    let p = retrying_platform();
    assert_eq!(p.retry_policy("Counter").unwrap().max_attempts, 3);
    let mut q = EmbeddedPlatform::new();
    q.register_function("img/noop", |_| Ok(TaskResult::output(1)));
    q.deploy_yaml(
        "classes:\n  - name: Plain\n    functions:\n      - name: f\n        image: img/noop\n",
    )
    .unwrap();
    assert_eq!(q.retry_policy("Plain").unwrap(), RetryPolicy::default());
}

#[test]
fn dataflows_run_serially_and_deterministically_under_chaos() {
    // A two-step dataflow with a 100% engine fault rate on step calls:
    // the serial chaos path must consult the injector in a stable order
    // (same seed ⇒ same trace), and partial failures surface as errors.
    fn run(seed: u64) -> (String, bool) {
        let mut p = EmbeddedPlatform::new();
        p.register_function("img/one", |_| Ok(TaskResult::output(1)));
        p.register_function("img/double", |t| {
            let x = t
                .args
                .first()
                .and_then(oprc_value::Value::as_i64)
                .unwrap_or(0);
            Ok(TaskResult::output(x * 2))
        });
        p.deploy_yaml(
            "
classes:
  - name: Flow
    qos:
      availability: 0.99
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: one
        image: img/one
      - name: double
        image: img/double
    dataflows:
      - name: pipeline
        steps:
          - id: a
            function: one
          - id: b
            function: double
            inputs: [\"step:a\"]
",
        )
        .unwrap();
        p.enable_telemetry(TelemetryConfig::default());
        p.enable_chaos(FaultPlan::new(seed).rate(InjectionSite::EngineExecute, 0.4));
        let id = p.create_object("Flow", vjson!({})).unwrap();
        let ok = p.invoke(id, "pipeline", vec![]).is_ok();
        (to_jsonl(&p.telemetry().finished()), ok)
    }
    let (a1, ok1) = run(11);
    let (a2, ok2) = run(11);
    assert_eq!(a1, a2, "dataflow chaos run must replay byte-identically");
    assert_eq!(ok1, ok2);
    // With chaos disabled the same pipeline still works (parallel path).
    let (_, ok_clean) = {
        let mut p = EmbeddedPlatform::new();
        p.register_function("img/one", |_| Ok(TaskResult::output(1)));
        p.register_function("img/double", |t| {
            let x = t
                .args
                .first()
                .and_then(oprc_value::Value::as_i64)
                .unwrap_or(0);
            Ok(TaskResult::output(x * 2))
        });
        p.deploy_yaml(
            "
classes:
  - name: Flow
    functions:
      - name: one
        image: img/one
      - name: double
        image: img/double
    dataflows:
      - name: pipeline
        steps:
          - id: a
            function: one
          - id: b
            function: double
            inputs: [\"step:a\"]
",
        )
        .unwrap();
        let id = p.create_object("Flow", vjson!({})).unwrap();
        let out = p.invoke(id, "pipeline", vec![]).unwrap();
        assert_eq!(out.output.as_i64(), Some(2));
        (String::new(), true)
    };
    assert!(ok_clean);
}
