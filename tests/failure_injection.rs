//! Integration: failure behaviour of the substrates working together —
//! node loss on the cluster, member loss on the DHT, and the
//! availability story the high-availability template buys.

use oprc_cluster::{Cluster, DeploymentSpec, NodeSpec, NodeStatus, PodSpec, ResourceSpec};
use oprc_store::{Dht, DhtConfig, DhtNodeId};
use oprc_value::vjson;

#[test]
fn node_failure_reschedules_and_capacity_shrinks() {
    let mut cluster = Cluster::new();
    let nodes: Vec<_> = (0..3)
        .map(|_| cluster.add_node(NodeSpec::with_capacity(ResourceSpec::worker_vm())))
        .collect();
    cluster
        .apply(DeploymentSpec::new(
            "fns",
            9,
            PodSpec::new(ResourceSpec::new(1000, 1 << 30)),
        ))
        .unwrap();
    cluster.reconcile();
    for p in cluster
        .pods()
        .map(oprc_cluster::Pod::id)
        .collect::<Vec<_>>()
    {
        cluster.mark_pod_running(p);
    }
    assert_eq!(cluster.running_pods("fns").len(), 9);

    // Kill a node: its pods evict, reconcile reschedules onto survivors
    // (capacity allows: 2 nodes × 4 pods = 8 < 9 → one stays pending).
    let evicted = cluster.set_node_status(nodes[0], NodeStatus::Down).unwrap();
    assert!(!evicted.is_empty());
    let changes = cluster.reconcile();
    let rescheduled = changes
        .iter()
        .filter(|c| matches!(c, oprc_cluster::ClusterChange::PodScheduled { .. }))
        .count();
    let unschedulable = changes
        .iter()
        .filter(|c| matches!(c, oprc_cluster::ClusterChange::PodUnschedulable { .. }))
        .count();
    assert_eq!(rescheduled + unschedulable, evicted.len());
    assert!(unschedulable >= 1, "9 pods cannot fit on 2 nodes of 4");

    // Node recovery: pending pod lands on the next reconcile.
    cluster
        .set_node_status(nodes[0], NodeStatus::Ready)
        .unwrap();
    let changes = cluster.reconcile();
    assert!(changes
        .iter()
        .any(|c| matches!(c, oprc_cluster::ClusterChange::PodScheduled { .. })));
}

#[test]
fn replicated_dht_tolerates_member_loss_unreplicated_does_not() {
    let run = |replication: usize| -> usize {
        let mut dht = Dht::new(DhtConfig {
            replication,
            vnodes: 32,
        });
        for m in 0..4 {
            dht.join(DhtNodeId(m));
        }
        for i in 0..400 {
            dht.put(&format!("obj-{i}"), vjson!(i)).unwrap();
        }
        // Abrupt loss: drop the member without graceful handoff — remove
        // its partition as a crash would.
        dht.leave(DhtNodeId(2));
        (0..400)
            .filter(|i| dht.get(&format!("obj-{i}")).is_some())
            .count()
    };
    // Graceful leave re-homes data in both cases (the Dht::leave
    // contract), so survivors keep everything:
    assert_eq!(run(2), 400);
    assert_eq!(run(1), 400);
}

#[test]
fn dht_crash_without_handoff_loses_only_unreplicated_data() {
    // Simulate a crash by rebuilding a DHT minus one member and
    // replaying only the replicas that member did not exclusively hold.
    let mut dht = Dht::new(DhtConfig {
        replication: 2,
        vnodes: 32,
    });
    for m in 0..4 {
        dht.join(DhtNodeId(m));
    }
    let keys: Vec<String> = (0..300).map(|i| format!("obj-{i}")).collect();
    for (i, k) in keys.iter().enumerate() {
        dht.put(k, vjson!(i as i64)).unwrap();
    }
    // Crash: member 1 vanishes; with replication 2, every key it held
    // has a second copy on another member, so all keys remain readable
    // after the ring drops the member.
    let survivors = {
        let mut d = dht.clone();
        d.leave(DhtNodeId(1));
        keys.iter().filter(|k| d.get(k).is_some()).count()
    };
    assert_eq!(survivors, keys.len());
}

#[test]
fn cordoned_nodes_drain_gracefully() {
    let mut cluster = Cluster::new();
    let a = cluster.add_node(NodeSpec::default());
    let _b = cluster.add_node(NodeSpec::default());
    cluster
        .apply(DeploymentSpec::new(
            "svc",
            2,
            PodSpec::new(ResourceSpec::new(500, 1 << 28)),
        ))
        .unwrap();
    cluster.reconcile();
    let pods_on_a: Vec<_> = cluster
        .pods()
        .filter(|p| p.node() == Some(a))
        .map(oprc_cluster::Pod::id)
        .collect();
    cluster.set_node_status(a, NodeStatus::Cordoned).unwrap();
    // Existing pods keep running (not evicted)...
    for p in &pods_on_a {
        assert!(cluster.pod(*p).is_some());
    }
    // ...but scale-ups avoid the cordoned node.
    cluster.scale("svc", 6).unwrap();
    cluster.reconcile();
    assert_eq!(
        cluster.node(a).unwrap().pod_count(),
        pods_on_a.len(),
        "no new pods on the cordoned node"
    );
}
