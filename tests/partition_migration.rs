//! Live object migration under load.
//!
//! The partition plane's handoff contract (DESIGN.md §17): a node
//! join or leave re-homes partition ownership *while invocations are
//! in flight*, and no invoke is dropped, torn, or double-applied —
//! the map swap publishes the new epoch, then draining each shard
//! lock waits out every in-flight invoke before its records are
//! accounted as moved. These tests race topology changes against
//! invoke storms (direct and batched, locality on and off) and prove
//! the counters stay linearizable, then pin that a join+leave cycle
//! leaves single-node behaviour — seeded chaos replay included —
//! byte-identical to a plane that never changed topology.

use oprc_chaos::FaultPlan;
use oprc_core::invocation::TaskResult;
use oprc_core::template::{ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog};
use oprc_platform::embedded::{BatchItem, EmbeddedPlatform};
use oprc_value::vjson;

/// A counter platform whose single class template pins locality
/// routing on or off.
fn counter_platform(locality: bool) -> EmbeddedPlatform {
    let mut catalog = TemplateCatalog::new();
    catalog.add(ClassRuntimeTemplate::new(
        "default",
        0,
        RuntimeConfig {
            locality_routing: locality,
            ..RuntimeConfig::default()
        },
    ));
    let mut p = EmbeddedPlatform::with_catalog(catalog);
    p.register_function("img/incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Counter
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
",
    )
    .expect("counter deploys");
    p
}

const WORKERS: usize = 4;
const OPS_PER_WORKER: usize = 500;
const OBJECTS: usize = 16;

/// Drives `WORKERS` closed invoke loops over `OBJECTS` shared counters
/// while the main thread cycles the topology: grow the plane to four
/// nodes, then fail the joiners one by one back down to the boot node.
/// Every invoke must succeed, and the final counts must sum exactly to
/// the ops issued — a dropped invoke would under-count, a torn or
/// double-applied commit would over-count.
fn storm_through_topology_cycle(locality: bool) {
    let p = counter_platform(locality);
    let ids: Vec<_> = (0..OBJECTS)
        .map(|_| p.create_object("Counter", vjson!({"count": 0})).unwrap())
        .collect();
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let p = &p;
            let ids = &ids;
            s.spawn(move || {
                for i in 0..OPS_PER_WORKER {
                    let id = ids[(w + i) % ids.len()];
                    p.invoke(id, "incr", vec![])
                        .expect("invoke survives handoff");
                }
            });
        }
        // Join three nodes mid-storm, then fail each one, yielding
        // between changes so the storm lands invokes inside every
        // migration window.
        let mut joined = Vec::new();
        for _ in 0..3 {
            joined.push(p.node_join().expect("join migrates").node);
            std::thread::yield_now();
        }
        for node in joined {
            p.node_leave(node).expect("leave migrates");
            std::thread::yield_now();
        }
    });
    let total: i64 = ids
        .iter()
        .map(|&id| p.get_state(id).unwrap()["count"].as_i64().unwrap())
        .sum();
    assert_eq!(
        total,
        (WORKERS * OPS_PER_WORKER) as i64,
        "handoff dropped or double-applied an invoke (locality={locality})"
    );
    // Six topology changes published six epochs; the storm's records
    // were live through them, so migrations moved real records.
    let summary = p.partition_summary();
    assert_eq!(summary.epoch, 6);
    assert_eq!(summary.nodes, 1, "plane cycled back to one ready node");
    assert!(
        summary.moved_records > 0,
        "migrations re-homed live records"
    );
}

#[test]
fn invoke_storm_survives_join_leave_cycle_with_locality() {
    storm_through_topology_cycle(true);
}

/// With locality off every off-owner invoke ships state through the
/// owner's transport — the handoff must also drain those.
#[test]
fn invoke_storm_survives_join_leave_cycle_without_locality() {
    storm_through_topology_cycle(false);
}

/// The batch path takes its (node, shard) grouping from one map
/// snapshot; a migration racing the batch must drain whole groups, not
/// tear them.
#[test]
fn batch_storm_survives_migration() {
    let p = counter_platform(true);
    let ids: Vec<_> = (0..OBJECTS)
        .map(|_| p.create_object("Counter", vjson!({"count": 0})).unwrap())
        .collect();
    const BATCHES: usize = 100;
    std::thread::scope(|s| {
        for w in 0..2 {
            let p = &p;
            let ids = &ids;
            s.spawn(move || {
                for i in 0..BATCHES {
                    let items = (0..ids.len())
                        .map(|k| BatchItem::new(ids[(w + i + k) % ids.len()], "incr", vec![]))
                        .collect();
                    for out in p.invoke_batch(items) {
                        out.expect("batched invoke survives handoff");
                    }
                }
            });
        }
        let node = p.node_join().expect("join migrates").node;
        std::thread::yield_now();
        p.node_leave(node).expect("leave migrates");
    });
    let total: i64 = ids
        .iter()
        .map(|&id| p.get_state(id).unwrap()["count"].as_i64().unwrap())
        .sum();
    assert_eq!(total, (2 * BATCHES * OBJECTS) as i64);
}

/// A seeded chaos run over one flaky counter: retries, torn commits,
/// latency — everything the virtual clock and injector decide.
/// Single-worker, so the transcript is a pure function of the seed.
fn chaos_transcript(p: &mut EmbeddedPlatform) -> String {
    p.enable_chaos(FaultPlan::new(42).rate_all(0.15));
    let id = p
        .create_object("Flaky", vjson!({"count": 0}))
        .expect("creates");
    let mut lines = Vec::new();
    for i in 0..40 {
        let line = match p.invoke(id, "incr", vec![]) {
            Ok(out) => format!("{i} ok {}", out.output),
            Err(e) => format!("{i} err {e}"),
        };
        lines.push(line);
    }
    lines.push(format!("state {}", p.get_state(id).unwrap()["count"]));
    lines.push(format!("clock_ns {}", p.chaos_clock().as_nanos()));
    lines.join("\n") + "\n"
}

fn flaky_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Flaky
    keySpecs: [count]
    qos:
      availability: 0.99
    functions:
      - name: incr
        image: img/incr
",
    )
    .expect("deploys");
    p
}

/// Once a plane has cycled back to a single ready node, the partition
/// layer must be invisible again: the seed-42 chaos replay on a plane
/// that did a join+leave is byte-identical to one that never changed
/// topology. (The single-node goldens in `concurrent_invocation.rs`
/// pin the transcript itself; this pins that migration leaves no
/// residue in the deterministic machinery.)
#[test]
fn post_cycle_single_node_chaos_replay_is_byte_identical() {
    let mut pristine = flaky_platform();
    let baseline = chaos_transcript(&mut pristine);

    let mut cycled = flaky_platform();
    let node = cycled.node_join().expect("join migrates").node;
    cycled.node_leave(node).expect("leave migrates");
    assert_eq!(cycled.node_count(), 1);
    assert_eq!(
        chaos_transcript(&mut cycled),
        baseline,
        "a join+leave cycle leaked nondeterminism into single-node replay"
    );
}
