//! Integration: durability semantics across the storage stack — the
//! persistent/non-persistent split that the paper's `nonpersist`
//! variant isolates.

use oprc_core::invocation::TaskResult;
use oprc_core::template::{ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog};
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_tests::counter_platform;
use oprc_value::vjson;

#[test]
fn flushed_state_survives_memory_loss() {
    let p = counter_platform();
    let ids: Vec<_> = (0..20)
        .map(|i| {
            p.create_object("Counter", vjson!({ "count": (i as i64) }))
                .unwrap()
        })
        .collect();
    for &id in &ids {
        p.invoke(id, "incr", vec![]).unwrap();
    }
    p.flush();
    p.simulate_memory_loss();
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(
            p.get_state(id).unwrap()["count"].as_i64(),
            Some(i as i64 + 1),
            "object {id} lost its state"
        );
    }
}

#[test]
fn unflushed_state_lives_in_the_memory_tier() {
    let p = counter_platform();
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    p.invoke(id, "incr", vec![]).unwrap();
    // Not flushed: durable tier may lag...
    // (write-behind delay is 50ms; no tick ran)
    // ...but reads are served from the DHT.
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(1));
}

#[test]
fn nonpersistent_template_loses_state_by_design() {
    // A provider catalog whose only template is non-persistent — the
    // `oprc-bypass-nonpersist` configuration.
    let mut catalog = TemplateCatalog::new();
    catalog.add(ClassRuntimeTemplate::new(
        "volatile",
        0,
        RuntimeConfig {
            persistent: false,
            ..RuntimeConfig::default()
        },
    ));
    let mut p = EmbeddedPlatform::with_catalog(catalog);
    p.register_function("img/touch", |_task| {
        Ok(TaskResult::output(1).with_patch(vjson!({"touched": true})))
    });
    p.deploy_yaml(
        "classes:\n  - name: Cache\n    functions:\n      - name: touch\n        image: img/touch\n",
    )
    .unwrap();
    let id = p.create_object("Cache", vjson!({})).unwrap();
    p.invoke(id, "touch", vec![]).unwrap();
    assert_eq!(p.get_state(id).unwrap()["touched"].as_bool(), Some(true));
    p.flush(); // flush is a no-op for non-persistent runtimes
    p.simulate_memory_loss();
    assert!(
        p.get_state(id).unwrap().is_empty(),
        "non-persistent state must not survive"
    );
}

#[test]
fn consolidation_reduces_db_write_amplification() {
    let p = counter_platform();
    let hot = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    for _ in 0..200 {
        p.invoke(hot, "incr", vec![]).unwrap();
    }
    p.flush();
    let (_, consolidated, batches, singles) = p.storage_stats();
    assert_eq!(singles, 0);
    assert!(
        consolidated >= 150,
        "hot-key updates should mostly consolidate: {consolidated}"
    );
    assert!(
        batches <= 30,
        "write amplification too high: {batches} batches"
    );
    // Yet the final durable value is exact.
    assert_eq!(p.durable_state(hot).unwrap()["count"].as_i64(), Some(200));
}

#[test]
fn durable_tier_reflects_latest_write_order() {
    let p = counter_platform();
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    for _ in 0..5 {
        p.invoke(id, "incr", vec![]).unwrap();
        p.flush();
    }
    assert_eq!(p.durable_state(id).unwrap()["count"].as_i64(), Some(5));
}
