//! Concurrency conformance for the sharded `&self` invocation plane.
//!
//! Four contracts, per DESIGN.md §12:
//!
//! 1. **Per-object serialization** — two invocations racing on one
//!    object never interleave their load → execute → commit sequences
//!    (the function body itself observes mutual exclusion per object).
//! 2. **Linearizable counters** — 8 workers × 1k increments on shared
//!    objects lose no updates.
//! 3. **Atomic plan swap** — `deploy_package` racing in-flight invokes
//!    yields old-plan or new-plan behaviour per invocation, never a torn
//!    mix or an error.
//! 4. **Single-worker determinism** — with one worker the refactor is
//!    invisible: chaos replay (seed 42) and logical-clock telemetry
//!    JSONL match the checked-in goldens byte for byte. Regenerate with
//!    `OPRC_BLESS=1 cargo test -p oprc-tests --test concurrent_invocation`.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use oprc_chaos::FaultPlan;
use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_telemetry::TelemetryConfig;
use oprc_value::{vjson, Value};

const COUNTER_PACKAGE: &str = "
classes:
  - name: Counter
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
";

fn counter_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(COUNTER_PACKAGE).expect("counter deploys");
    p
}

/// Contract 1: the platform never runs two function bodies for the same
/// object concurrently — the shard lock makes each invocation's
/// load → execute → commit atomic with respect to its object.
#[test]
fn per_object_invocations_serialize() {
    let in_flight = Arc::new(AtomicI64::new(0));
    let seen = in_flight.clone();
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/excl", move |task| {
        let now = seen.fetch_add(1, Ordering::SeqCst) + 1;
        assert_eq!(now, 1, "two bodies ran concurrently for one object");
        // Keep the body on-CPU long enough that an unserialised racer
        // would be caught.
        std::thread::yield_now();
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        seen.fetch_sub(1, Ordering::SeqCst);
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Excl
    keySpecs: [count]
    functions:
      - name: incr
        image: img/excl
",
    )
    .expect("deploys");
    let id = p
        .create_object("Excl", vjson!({"count": 0}))
        .expect("creates");
    std::thread::scope(|s| {
        for _ in 0..4 {
            let p = &p;
            s.spawn(move || {
                for _ in 0..200 {
                    p.invoke(id, "incr", vec![]).expect("invokes");
                }
            });
        }
    });
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(800));
}

/// Contract 2: no lost updates — 8 workers × 1k increments across a
/// handful of shared objects sum exactly.
#[test]
fn linearizable_counters_across_workers() {
    const WORKERS: usize = 8;
    const OPS_PER_WORKER: usize = 1_000;
    let p = counter_platform();
    let ids: Vec<_> = (0..4)
        .map(|_| p.create_object("Counter", vjson!({"count": 0})).unwrap())
        .collect();
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let p = &p;
            let ids = &ids;
            s.spawn(move || {
                for i in 0..OPS_PER_WORKER {
                    let id = ids[(w + i) % ids.len()];
                    p.invoke(id, "incr", vec![]).expect("invokes");
                }
            });
        }
    });
    let total: i64 = ids
        .iter()
        .map(|&id| p.get_state(id).unwrap()["count"].as_i64().unwrap())
        .sum();
    assert_eq!(total, (WORKERS * OPS_PER_WORKER) as i64);
}

/// Contract 3: a redeploy racing in-flight invokes is atomic — every
/// concurrent invocation sees the old plan or the new plan, never a
/// torn mix, and none errors.
#[test]
fn deploy_never_tears_in_flight_invokes() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/v1", |_| Ok(TaskResult::output("v1")));
    p.register_function("img/v2", |_| Ok(TaskResult::output("v2")));
    let v_pkg = |image: &str| {
        format!(
            "
name: hot
classes:
  - name: Hot
    functions:
      - name: get
        image: {image}
"
        )
    };
    p.deploy_yaml(&v_pkg("img/v1")).expect("v1 deploys");
    let id = p.create_object("Hot", vjson!({})).expect("creates");

    let outputs: Vec<String> = std::thread::scope(|s| {
        let invokers: Vec<_> = (0..4)
            .map(|_| {
                let p = &p;
                s.spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..300 {
                        let out = p.invoke(id, "get", vec![]).expect("never torn");
                        seen.push(out.output.as_str().expect("tagged output").to_string());
                    }
                    seen
                })
            })
            .collect();
        // Redeploy mid-storm (several times, to land inside the loops).
        for _ in 0..5 {
            p.deploy_yaml(&v_pkg("img/v2")).expect("v2 deploys");
            p.deploy_yaml(&v_pkg("img/v1")).expect("v1 redeploys");
        }
        p.deploy_yaml(&v_pkg("img/v2")).expect("final v2 deploys");
        invokers
            .into_iter()
            .flat_map(|h| h.join().expect("worker survives"))
            .collect()
    });
    assert!(
        outputs.iter().all(|o| o == "v1" || o == "v2"),
        "only whole-plan outputs allowed"
    );
    // After the final deploy the new plan is fully visible.
    let out = p.invoke(id, "get", vec![]).expect("post-deploy invoke");
    assert_eq!(out.output.as_str(), Some("v2"));
}

fn golden_path(name: &str) -> String {
    format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Compares `actual` against the checked-in golden, or regenerates the
/// golden when `OPRC_BLESS` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("OPRC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("writes golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} ({e}); rerun with OPRC_BLESS=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted from the checked-in seed-42 golden \
         (if intentional, regenerate with OPRC_BLESS=1)"
    );
}

/// A seeded chaos run: availability-tier retries, torn commits, latency
/// — everything the virtual clock and injector decide. Single-worker,
/// so the transcript is a pure function of the seed.
fn chaos_transcript() -> String {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |task| {
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Flaky
    keySpecs: [count]
    qos:
      availability: 0.99
    functions:
      - name: incr
        image: img/incr
",
    )
    .expect("deploys");
    p.enable_chaos(FaultPlan::new(42).rate_all(0.15));
    let id = p
        .create_object("Flaky", vjson!({"count": 0}))
        .expect("creates");
    let mut lines = Vec::new();
    for i in 0..40 {
        let line = match p.invoke(id, "incr", vec![]) {
            Ok(out) => format!("{i} ok {}", out.output),
            Err(e) => format!("{i} err {e}"),
        };
        lines.push(line);
    }
    lines.push(format!("state {}", p.get_state(id).unwrap()["count"]));
    lines.push(format!("clock_ns {}", p.chaos_clock().as_nanos()));
    let mut faults: Vec<String> = p
        .metrics()
        .fault_totals()
        .into_iter()
        .map(|(site, n)| format!("fault {site} {n}"))
        .collect();
    faults.sort();
    lines.extend(faults);
    lines.join("\n") + "\n"
}

/// Contract 4a: chaos replay at seed 42 is byte-identical to the golden
/// in single-worker mode.
#[test]
fn single_worker_chaos_replay_matches_golden() {
    let transcript = chaos_transcript();
    // Determinism first: two fresh runs agree before the golden check.
    assert_eq!(
        transcript,
        chaos_transcript(),
        "chaos replay not reproducible"
    );
    assert_matches_golden("seed42_chaos_replay.txt", &transcript);
}

/// A seeded traced run (logical clock): one dataflow + two direct
/// invokes. Single-worker, so span ids/timestamps are deterministic.
fn telemetry_jsonl() -> String {
    let mut p = EmbeddedPlatform::new();
    p.enable_telemetry(TelemetryConfig::default());
    p.register_function("img/fa", |t| {
        let x = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        Ok(TaskResult::output(x * 2).with_patch(vjson!({"a": (x * 2)})))
    });
    p.register_function("img/fb", |t| {
        let x = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        Ok(TaskResult::output(x + 1).with_patch(vjson!({"b": (x + 1)})))
    });
    p.register_function("img/fmerge", |t| {
        let a = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        let b = t.args.get(1).and_then(Value::as_i64).unwrap_or(0);
        Ok(TaskResult::output(a + b).with_patch(vjson!({"merged": (a + b)})))
    });
    p.deploy_yaml(
        "
classes:
  - name: Doc
    keySpecs: [a, b, merged]
    functions:
      - name: fa
        image: img/fa
      - name: fb
        image: img/fb
      - name: fmerge
        image: img/fmerge
    dataflows:
      - name: fanin
        output: merge
        steps:
          - id: a
            function: fa
            inputs: [input]
          - id: b
            function: fb
            inputs: [input]
          - id: merge
            function: fmerge
            inputs: [\"step:a\", \"step:b\"]
",
    )
    .expect("deploys");
    let id = p.create_object("Doc", vjson!({})).expect("creates");
    p.invoke(id, "fanin", vec![vjson!(5)])
        .expect("dataflow runs");
    p.invoke(id, "fa", vec![vjson!(3)]).expect("direct invoke");
    p.invoke(id, "fb", vec![vjson!(4)]).expect("direct invoke");
    p.telemetry().export_jsonl()
}

/// Contract 4b: logical-clock telemetry JSONL is byte-identical to the
/// golden in single-worker mode.
#[test]
fn single_worker_telemetry_jsonl_matches_golden() {
    let jsonl = telemetry_jsonl();
    assert_eq!(
        jsonl,
        telemetry_jsonl(),
        "telemetry export not reproducible"
    );
    assert_matches_golden("seed42_telemetry.jsonl", &jsonl);
}

/// The debug-build lock-order sanitizer enforces the one-shard-at-a-time
/// rule the deadlock-freedom argument (DESIGN.md §12) rests on: holding
/// two shard locks at once panics instead of deadlocking silently.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-order violation")]
fn double_shard_acquisition_trips_sanitizer() {
    counter_platform().debug_violate_lock_order();
}
