//! Seed-corpus regression replays (ISSUE PR 8).
//!
//! Every JSON file under `tests/seeds/` is one scenario spec plus the
//! pinned outcome of its original run. The soak harness
//! (`scenario_soak --soak N`) writes a file here whenever a derived
//! seed violates an invariant, after minimizing it; this test replays
//! the whole corpus on every tier-1 run, so a bug found once by the
//! soak can never silently return.
//!
//! Replays are exact: the scenario runner is virtual-time and
//! single-threaded, so `invocations`, `completed`, and the FNV-1a
//! digest of the JSONL telemetry export must match byte-for-byte,
//! on any host, forever.
//!
//! To regenerate the starter corpus after an intentional platform
//! change (new spans, changed retry schedule, ...):
//!
//! ```text
//! cargo test -p oprc-tests --test scenario_seeds -- --ignored regen
//! ```

use std::path::PathBuf;

use oprc_simcore::SimDuration;
use oprc_value::{json, vjson};
use oprc_workloads::scenario::{run_scenario, AdmissionSpec, RateCurve, ScenarioSpec, TenantSpec};

fn seeds_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("seeds")
}

fn corpus() -> Vec<(PathBuf, oprc_value::Value)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(seeds_dir())
        .expect("tests/seeds/ exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("seed file readable");
            let doc =
                json::parse(&text).unwrap_or_else(|e| panic!("{}: bad JSON: {e}", p.display()));
            (p, doc)
        })
        .collect()
}

/// The starter corpus: the three traffic shapes the issue calls out.
/// Short durations keep the tier-1 replay fast; the shapes still hit
/// the interesting machinery (hot shard, chaos retries, admission).
fn starter_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "hot_key_storm".into(),
            seed: 31,
            objects: 64,
            duration: SimDuration::from_secs(15),
            curve: RateCurve::Constant { rate: 80.0 },
            tenants: vec![TenantSpec::new("storm", 1.0, 1.5)],
            admission: AdmissionSpec::off(),
            chaos_rate: 0.0,
            fairness_floor: 0.0,
        },
        ScenarioSpec {
            name: "flash_crowd_chaos".into(),
            seed: 7,
            objects: 48,
            duration: SimDuration::from_secs(20),
            curve: RateCurve::FlashCrowd {
                base: 20.0,
                spike_rate: 150.0,
                spike_start: SimDuration::from_secs(8),
                spike_duration: SimDuration::from_secs(4),
            },
            tenants: vec![TenantSpec::new("crowd", 1.0, 0.8)],
            admission: AdmissionSpec::off(),
            chaos_rate: 0.1,
            fairness_floor: 0.0,
        },
        ScenarioSpec {
            name: "tenant_flood".into(),
            seed: 13,
            objects: 64,
            duration: SimDuration::from_secs(15),
            curve: RateCurve::Constant { rate: 100.0 },
            tenants: vec![
                TenantSpec::new("flooder", 10.0, 1.1),
                TenantSpec::new("tenant-a", 1.0, 0.0),
                TenantSpec::new("tenant-b", 1.0, 0.0),
            ],
            admission: AdmissionSpec::on(10.0, 20.0),
            chaos_rate: 0.0,
            fairness_floor: 0.8,
        },
    ]
}

#[test]
fn seed_corpus_replays_deterministically() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 3,
        "seed corpus must hold at least the three starter seeds, found {}",
        corpus.len()
    );
    for (path, doc) in corpus {
        let name = path.display();
        let spec = ScenarioSpec::from_value(
            doc.get("spec")
                .unwrap_or_else(|| panic!("{name}: seed file lacks 'spec'")),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let expect = doc
            .get("expect")
            .unwrap_or_else(|| panic!("{name}: seed file lacks 'expect'"));

        let first = run_scenario(&spec);
        let second = run_scenario(&spec);
        assert_eq!(
            first, second,
            "{name}: same spec must replay identically within a build"
        );

        // The pinned outcome: byte-identical telemetry (FNV digest) and
        // exact traffic counts, across hosts and over time.
        assert_eq!(
            Some(first.invocations),
            expect["invocations"].as_u64(),
            "{name}: arrival count drifted"
        );
        assert_eq!(
            Some(first.completed),
            expect["completed"].as_u64(),
            "{name}: completion count drifted"
        );
        assert_eq!(
            Some(format!("{:016x}", first.telemetry_digest).as_str()),
            expect["telemetry_digest"].as_str(),
            "{name}: telemetry no longer byte-identical to the recorded run"
        );
        assert_eq!(
            Some(first.invariant_failures.len() as u64),
            expect["invariant_failures"].as_u64(),
            "{name}: invariant verdict changed: {:?}",
            first.invariant_failures
        );
    }
}

/// Regenerates the starter seed files from the current platform
/// behaviour. Run explicitly (`-- --ignored regen`) after a deliberate
/// telemetry/scheduling change; never runs in tier-1.
#[test]
#[ignore = "regenerates tests/seeds/ — run only after intentional behaviour changes"]
fn regen_starter_seeds() {
    std::fs::create_dir_all(seeds_dir()).expect("seeds dir creatable");
    for spec in starter_specs() {
        let report = run_scenario(&spec);
        assert!(
            report.passed(),
            "{}: starter seed must pass, got {:?}",
            spec.name,
            report.invariant_failures
        );
        let doc = vjson!({
            "spec": (spec.to_value()),
            "expect": (vjson!({
                "invocations": (report.invocations),
                "completed": (report.completed),
                "telemetry_digest": (format!("{:016x}", report.telemetry_digest)),
                "invariant_failures": ((report.invariant_failures.len()) as u64),
            })),
        });
        let path = seeds_dir().join(format!("{}_{}.json", spec.name, spec.seed));
        std::fs::write(&path, json::to_string_pretty(&doc)).expect("seed file writable");
        eprintln!("wrote {}", path.display());
    }
}
