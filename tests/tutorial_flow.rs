//! Integration: the full §IV tutorial flow against the embedded
//! platform — define functions, define classes in YAML, deploy,
//! interact with objects, and manage unstructured data via presigned
//! URLs.

use bytes::Bytes;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::monitoring::MID_LOOKBACK;
use oprc_platform::PlatformError;
use oprc_tests::counter_platform;
use oprc_value::vjson;
use oprc_workloads::{image, jsonrand, video};

#[test]
fn steps_3_to_5_function_class_object() {
    // Step 3: function; step 4: class; step 5: deploy + interact.
    let p = counter_platform();
    let id = p.create_object("Counter", vjson!({"count": 40})).unwrap();
    p.invoke(id, "incr", vec![]).unwrap();
    p.invoke(id, "incr", vec![]).unwrap();
    let out = p.invoke(id, "value", vec![]).unwrap();
    assert_eq!(out.output.as_i64(), Some(42));
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(42));
}

#[test]
fn all_three_reference_applications_coexist() {
    let mut p = EmbeddedPlatform::new();
    jsonrand::install(&mut p).unwrap();
    image::install(&mut p).unwrap();
    video::install(&mut p).unwrap();

    // Classes from three packages are all visible and usable.
    let doc = p.create_object("JsonDoc", vjson!({})).unwrap();
    let img = p.create_object("LabelledImage", vjson!({})).unwrap();
    let vid = p.create_object("Video", vjson!({})).unwrap();

    p.invoke(doc, "randomize", vec![vjson!({"keys": 4, "seed": 9})])
        .unwrap();

    let url = p.upload_url(img, "image").unwrap();
    p.upload(&url, image::generate_image(64, 32, 2), "image/raw")
        .unwrap();
    let out = p.invoke(img, "detectObject", vec![]).unwrap();
    assert_eq!(out.output["objects"].as_i64(), Some(2));

    let url = p.upload_url(vid, "source").unwrap();
    p.upload(&url, video::generate_video(30), "video/raw")
        .unwrap();
    let out = p
        .invoke(vid, "publish", vec![vjson!({"title": "x"})])
        .unwrap();
    assert_eq!(out.output["duration"].as_i64(), Some(30));
}

#[test]
fn redeploying_a_package_updates_classes() {
    let p = counter_platform();
    // v2 of the package renames the readonly function.
    p.deploy_yaml(
        "
classes:
  - name: Counter
    keySpecs: [count]
    functions:
      - name: incr
        image: img/counter-incr
      - name: read
        image: img/counter-get
        readonly: true
",
    )
    .unwrap();
    let id = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    assert!(p.invoke(id, "read", vec![]).is_ok());
    assert!(matches!(
        p.invoke(id, "value", vec![]),
        Err(PlatformError::Core(_))
    ));
}

#[test]
fn presigned_urls_are_the_only_path_to_files() {
    let mut p = EmbeddedPlatform::new();
    image::install(&mut p).unwrap();
    let id = p.create_object("Image", vjson!({})).unwrap();
    let put = p.upload_url(id, "image").unwrap();

    // Tampered signature is rejected end to end.
    let tampered = put.replace("signature=", "signature=00");
    assert!(p
        .upload(&tampered, Bytes::from_static(b"x"), "image/raw")
        .is_err());

    // Unsigned direct path is rejected.
    assert!(p.download("s3://oaas-image/obj-0/image").is_err());

    // The legitimate URL works.
    p.upload(&put, image::generate_image(8, 8, 1), "image/raw")
        .unwrap();
    let get = p.download_url(id, "image").unwrap();
    assert_eq!(p.download(&get).unwrap().data.len(), 4 + 64);
}

#[test]
fn invalid_yaml_reports_position() {
    let p = EmbeddedPlatform::new();
    let err = p.deploy_yaml("classes:\n  - name: [broken\n").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("line 2"),
        "error should carry a position: {msg}"
    );
}

#[test]
fn object_directory_isolates_objects() {
    let p = counter_platform();
    let a = p.create_object("Counter", vjson!({"count": 0})).unwrap();
    let b = p.create_object("Counter", vjson!({"count": 100})).unwrap();
    for _ in 0..5 {
        p.invoke(a, "incr", vec![]).unwrap();
    }
    assert_eq!(p.get_state(a).unwrap()["count"].as_i64(), Some(5));
    assert_eq!(p.get_state(b).unwrap()["count"].as_i64(), Some(100));
}

#[test]
fn metrics_observe_the_tutorial_session() {
    let p = counter_platform();
    let id = p.create_object("Counter", vjson!({})).unwrap();
    for _ in 0..10 {
        p.invoke(id, "incr", vec![]).unwrap();
    }
    assert_eq!(p.metrics().completed("Counter"), 10);
    let m = p
        .metrics()
        .observe("Counter", p.now(), MID_LOOKBACK, 0.5)
        .unwrap();
    assert!(m.throughput > 0.0);
    assert_eq!(m.error_rate, 0.0);
    // Windows are non-destructive: a second observation sees the same
    // completions, and the sliding-window view agrees.
    assert!(p
        .metrics()
        .observe("Counter", p.now(), MID_LOOKBACK, 0.5)
        .is_some());
    let w = p
        .metrics()
        .class_window("Counter", p.now(), MID_LOOKBACK)
        .unwrap();
    assert_eq!(w.completed, 10);
    assert_eq!(w.error_fraction, 0.0);
}
