//! Integration tests for the whole-package linter: the four broken
//! fixtures under `tests/fixtures/` must each be flagged with their
//! stable code, and the deploy gate must refuse them before creating
//! any class runtime.

use oprc_analyzer::{analyze, codes, LintConfig, Severity};
use oprc_core::parse::package_from_yaml_lenient;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_platform::gateway::{CommandError, OprcCtl};
use oprc_platform::PlatformError;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}.yaml", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn lint_fixture(name: &str) -> oprc_analyzer::AnalysisReport {
    let pkg = package_from_yaml_lenient(&fixture(name)).expect("fixture parses leniently");
    analyze(&pkg)
}

#[test]
fn undefined_function_fixture_flags_oprc001() {
    let report = lint_fixture("undefined_function");
    assert!(report.has_errors());
    assert!(
        report.has_code(codes::UNRESOLVED_FUNCTION),
        "{}",
        report.render()
    );
    let errors = report.errors();
    assert_eq!(
        errors[0].source,
        "class Image > dataflow thumbnail > step stamp"
    );
}

#[test]
fn cyclic_flow_fixture_flags_oprc030() {
    let report = lint_fixture("cyclic_flow");
    assert!(report.has_errors());
    assert!(
        report.has_code(codes::DATAFLOW_CYCLE),
        "{}",
        report.render()
    );
    // The cycle is reported once, not restated as an OPRC005.
    assert!(!report.has_code(codes::UNRESOLVED_PACKAGE));
}

#[test]
fn internal_leak_fixture_flags_oprc020() {
    let report = lint_fixture("internal_leak");
    assert!(report.has_errors());
    assert!(report.has_code(codes::INTERNAL_LEAK), "{}", report.render());
    let leak = report
        .errors()
        .into_iter()
        .find(|d| d.code == codes::INTERNAL_LEAK)
        .unwrap()
        .clone();
    assert_eq!(
        leak.source,
        "class Auditor > dataflow audit > step force-rotate"
    );
}

#[test]
fn unsatisfiable_nfr_fixture_flags_oprc043() {
    let report = lint_fixture("unsatisfiable_nfr");
    assert!(report.has_errors());
    assert!(
        report.has_code(codes::AVAILABILITY_WITHOUT_PERSISTENCE),
        "{}",
        report.render()
    );
    assert_eq!(report.errors()[0].source, "class Cache");
}

#[test]
fn deploy_gate_refuses_every_fixture() {
    for name in [
        "undefined_function",
        "cyclic_flow",
        "internal_leak",
        "unsatisfiable_nfr",
    ] {
        let pkg = package_from_yaml_lenient(&fixture(name)).unwrap();
        let classes: Vec<String> = pkg.classes.iter().map(|c| c.name.clone()).collect();
        let platform = EmbeddedPlatform::new();
        let err = platform.deploy_package(pkg).unwrap_err();
        assert!(
            matches!(err, PlatformError::LintRejected(_)),
            "{name}: expected LintRejected, got {err}"
        );
        // The gate fires before any class runtime exists.
        for class in &classes {
            assert!(
                platform
                    .create_object(class, oprc_value::Value::Null)
                    .is_err(),
                "{name}: class {class} was deployed despite lint errors"
            );
        }
    }
}

#[test]
fn gateway_lint_fails_on_every_fixture() {
    let mut ctl = OprcCtl::new(EmbeddedPlatform::new());
    for name in [
        "undefined_function",
        "cyclic_flow",
        "internal_leak",
        "unsatisfiable_nfr",
    ] {
        let path = format!("{}/fixtures/{name}.yaml", env!("CARGO_MANIFEST_DIR"));
        match ctl.execute(&format!("lint @{path}")) {
            Err(CommandError::Lint(report)) => {
                assert!(report.contains("error["), "{name}: {report}");
            }
            other => panic!("{name}: expected lint rejection, got {other:?}"),
        }
    }
}

#[test]
fn permissive_config_deploys_fixtures_that_parse() {
    // The opt-out: with a permissive lint config the gate passes, and
    // packages that survive strict validation deploy normally.
    for name in ["undefined_function", "internal_leak", "unsatisfiable_nfr"] {
        let pkg = package_from_yaml_lenient(&fixture(name)).unwrap();
        let mut platform = EmbeddedPlatform::new();
        platform.set_lint_config(LintConfig::permissive());
        platform.deploy_package(pkg).unwrap_or_else(|e| {
            panic!("{name}: permissive deploy failed: {e}");
        });
        // Findings are still surfaced as warnings on the metrics hub.
        assert!(
            !platform.metrics().lint_warnings().is_empty(),
            "{name}: expected lint warnings"
        );
    }
}

#[test]
fn reference_workloads_stay_clean_under_the_gate() {
    // The shipped workloads must deploy with the default lint config
    // and produce no error-severity diagnostics.
    for yaml in [
        oprc_workloads::image::PACKAGE_YAML,
        oprc_workloads::video::PACKAGE_YAML,
    ] {
        let pkg = oprc_core::parse::package_from_yaml(yaml).unwrap();
        let report = analyze(&pkg);
        assert_eq!(
            report.count(Severity::Error),
            0,
            "workload has lint errors:\n{}",
            report.render()
        );
    }
}
