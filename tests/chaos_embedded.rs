//! Property-based chaos test: arbitrary operation sequences against the
//! embedded platform never violate platform invariants — including
//! sequences that inject faults into the invocation plane, where the
//! retry layer must keep state commits exactly-once.

use oprc_chaos::{FaultKind, FaultPlan, InjectionSite};
use oprc_core::invocation::TaskResult;
use oprc_core::object::ObjectId;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_simcore::SimDuration;
use oprc_value::{merge, vjson, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Incr(u16),
    Put(u16, u16, i32),
    Read(u16),
    Flush,
    MemoryLoss,
    Tick,
    Snapshot,
    /// Arm a one-shot fault at a site's next call (site pick, kind pick).
    InjectFault(u8, u8),
    /// Advance the virtual chaos clock (breaker cooldowns, deadlines).
    AdvanceDeadline(u16),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Create),
            any::<u16>().prop_map(Op::Incr),
            (any::<u16>(), any::<u16>(), any::<i32>()).prop_map(|(o, k, v)| Op::Put(o, k, v)),
            any::<u16>().prop_map(Op::Read),
            Just(Op::Flush),
            Just(Op::MemoryLoss),
            Just(Op::Tick),
            Just(Op::Snapshot),
            (any::<u8>(), any::<u8>()).prop_map(|(s, k)| Op::InjectFault(s, k)),
            any::<u16>().prop_map(Op::AdvanceDeadline),
        ],
        1..60,
    )
}

fn platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |t| {
        let n = t.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.register_function("img/put", |t| {
        let key = t.args[0].as_str().unwrap_or("k").to_string();
        let val = t.args[1].clone();
        Ok(TaskResult::output(Value::Null).with_patch(Value::from_iter([(key, val)])))
    });
    p.register_function("img/read", |t| Ok(TaskResult::output(t.state_in.clone())));
    // The availability tier arms the retry layer (0.99 → 3 attempts),
    // so injected faults exercise retries, not just failures.
    p.deploy_yaml(
        "
classes:
  - name: Bag
    qos:
      availability: 0.99
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
      - name: put
        image: img/put
      - name: read
        image: img/read
        readonly: true
",
    )
    .unwrap();
    // Chaos on with an empty plan: nothing fires until an
    // `Op::InjectFault` scripts a fault.
    p.enable_chaos(FaultPlan::new(0));
    p
}

fn pick_site(s: u8) -> InjectionSite {
    InjectionSite::ALL[s as usize % InjectionSite::ALL.len()]
}

fn pick_kind(k: u8) -> FaultKind {
    match k % 3 {
        0 => FaultKind::Error,
        1 => FaultKind::Torn,
        _ => FaultKind::Latency(SimDuration::from_millis(u64::from(k))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A shadow model (plain map of expected state) stays consistent
    /// with the platform through creates, writes, flushes, memory
    /// wipes, ticks, and snapshot round-trips.
    #[test]
    fn platform_matches_shadow_model(ops in arb_ops()) {
        let mut p = platform();
        let mut shadow: Vec<(ObjectId, Value)> = Vec::new();
        for op in ops {
            match op {
                Op::Create(seed) => {
                    if shadow.len() < 12 {
                        let initial = vjson!({ "count": (seed as i64 % 5) });
                        let id = p.create_object("Bag", initial.clone()).unwrap();
                        shadow.push((id, initial));
                    }
                }
                Op::Incr(x) => {
                    if !shadow.is_empty() {
                        let idx = x as usize % shadow.len();
                        let (id, expect) = &mut shadow[idx];
                        let n = expect["count"].as_i64().unwrap_or(0) + 1;
                        // Injected faults may exhaust the retry budget
                        // or trip the breaker; the shadow advances only
                        // on success. An error must leave state
                        // untouched — the final audit enforces it.
                        if let Ok(out) = p.invoke(*id, "incr", vec![]) {
                            prop_assert_eq!(out.output.as_i64(), Some(n));
                            expect.insert("count", n);
                        }
                    }
                }
                Op::Put(x, k, v) => {
                    if !shadow.is_empty() {
                        let idx = x as usize % shadow.len();
                        let (id, expect) = &mut shadow[idx];
                        let key = format!("k{}", k % 6);
                        if p
                            .invoke(*id, "put", vec![Value::from(key.as_str()), Value::from(v as i64)])
                            .is_ok()
                        {
                            expect.insert(key, v as i64);
                        }
                    }
                }
                Op::Read(x) => {
                    if !shadow.is_empty() {
                        let idx = x as usize % shadow.len();
                        let (id, expect) = &shadow[idx];
                        if let Ok(out) = p.invoke(*id, "read", vec![]) {
                            prop_assert_eq!(&out.output, expect);
                        }
                    }
                }
                Op::Flush => {
                    p.flush();
                }
                Op::MemoryLoss => {
                    // Only safe (state-preserving) after a flush — do
                    // both, which is what an orderly restart does.
                    p.flush();
                    p.simulate_memory_loss();
                }
                Op::Tick => {
                    p.tick();
                }
                Op::Snapshot => {
                    // Export, rebuild a fresh platform, import, continue
                    // there (a migration mid-chaos). Armed faults and
                    // breaker state do not migrate.
                    let snap = p.export_snapshot(false);
                    let fresh = platform();
                    fresh.import_snapshot(&snap).unwrap();
                    p = fresh;
                }
                Op::InjectFault(s, k) => {
                    p.chaos().script_next(pick_site(s), pick_kind(k));
                }
                Op::AdvanceDeadline(ms) => {
                    p.advance_chaos_clock(SimDuration::from_millis(u64::from(ms)));
                }
            }
        }
        // Final audit: every object matches its shadow state.
        for (id, expect) in &shadow {
            let got = p.get_state(*id).unwrap();
            let mut want = expect.clone();
            merge::normalize(&mut want);
            prop_assert_eq!(got, want, "object {} diverged", id);
        }
    }

    /// Retried `img/incr`-style tasks never double-apply state: with an
    /// arbitrary fault armed before every call, the final counter always
    /// equals the number of successful invocations — a torn commit whose
    /// retry re-applied the patch would overshoot it.
    #[test]
    fn retried_incr_never_double_applies(faults in prop::collection::vec(
        (any::<u8>(), any::<u8>()), 1..40,
    )) {
        let p = platform();
        let id = p.create_object("Bag", vjson!({"count": 0})).unwrap();
        let mut succeeded = 0_i64;
        for (s, k) in faults {
            p.chaos().script_next(pick_site(s), pick_kind(k));
            if p.invoke(id, "incr", vec![]).is_ok() {
                succeeded += 1;
            }
            prop_assert_eq!(
                p.get_state(id).unwrap()["count"].as_i64(),
                Some(succeeded),
                "count must track successes exactly (no double-apply, no lost commit)"
            );
        }
    }
}
