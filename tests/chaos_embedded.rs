//! Property-based chaos test: arbitrary operation sequences against the
//! embedded platform never violate platform invariants.

use oprc_core::invocation::TaskResult;
use oprc_core::object::ObjectId;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::{merge, vjson, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Incr(u16),
    Put(u16, u16, i32),
    Read(u16),
    Flush,
    MemoryLoss,
    Tick,
    Snapshot,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Create),
            any::<u16>().prop_map(Op::Incr),
            (any::<u16>(), any::<u16>(), any::<i32>()).prop_map(|(o, k, v)| Op::Put(o, k, v)),
            any::<u16>().prop_map(Op::Read),
            Just(Op::Flush),
            Just(Op::MemoryLoss),
            Just(Op::Tick),
            Just(Op::Snapshot),
        ],
        1..60,
    )
}

fn platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", |t| {
        let n = t.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.register_function("img/put", |t| {
        let key = t.args[0].as_str().unwrap_or("k").to_string();
        let val = t.args[1].clone();
        Ok(TaskResult::output(Value::Null).with_patch(Value::from_iter([(key, val)])))
    });
    p.register_function("img/read", |t| Ok(TaskResult::output(t.state_in.clone())));
    p.deploy_yaml(
        "
classes:
  - name: Bag
    constraint:
      persistent: true
    keySpecs: [count]
    functions:
      - name: incr
        image: img/incr
      - name: put
        image: img/put
      - name: read
        image: img/read
        readonly: true
",
    )
    .unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A shadow model (plain map of expected state) stays consistent
    /// with the platform through creates, writes, flushes, memory
    /// wipes, ticks, and snapshot round-trips.
    #[test]
    fn platform_matches_shadow_model(ops in arb_ops()) {
        let mut p = platform();
        let mut shadow: Vec<(ObjectId, Value)> = Vec::new();
        for op in ops {
            match op {
                Op::Create(seed) => {
                    if shadow.len() < 12 {
                        let initial = vjson!({ "count": (seed as i64 % 5) });
                        let id = p.create_object("Bag", initial.clone()).unwrap();
                        shadow.push((id, initial));
                    }
                }
                Op::Incr(x) => {
                    if !shadow.is_empty() {
                        let idx = x as usize % shadow.len();
                        let (id, expect) = &mut shadow[idx];
                        let n = expect["count"].as_i64().unwrap_or(0) + 1;
                        let out = p.invoke(*id, "incr", vec![]).unwrap();
                        prop_assert_eq!(out.output.as_i64(), Some(n));
                        expect.insert("count", n);
                    }
                }
                Op::Put(x, k, v) => {
                    if !shadow.is_empty() {
                        let idx = x as usize % shadow.len();
                        let (id, expect) = &mut shadow[idx];
                        let key = format!("k{}", k % 6);
                        p.invoke(*id, "put", vec![Value::from(key.as_str()), Value::from(v as i64)])
                            .unwrap();
                        expect.insert(key, v as i64);
                    }
                }
                Op::Read(x) => {
                    if !shadow.is_empty() {
                        let idx = x as usize % shadow.len();
                        let (id, expect) = &shadow[idx];
                        let out = p.invoke(*id, "read", vec![]).unwrap();
                        prop_assert_eq!(&out.output, expect);
                    }
                }
                Op::Flush => {
                    p.flush();
                }
                Op::MemoryLoss => {
                    // Only safe (state-preserving) after a flush — do
                    // both, which is what an orderly restart does.
                    p.flush();
                    p.simulate_memory_loss();
                }
                Op::Tick => {
                    p.tick();
                }
                Op::Snapshot => {
                    // Export, rebuild a fresh platform, import, continue
                    // there (a migration mid-chaos).
                    let snap = p.export_snapshot(false);
                    let mut fresh = platform();
                    fresh.import_snapshot(&snap).unwrap();
                    p = fresh;
                }
            }
        }
        // Final audit: every object matches its shadow state.
        for (id, expect) in &shadow {
            let got = p.get_state(*id).unwrap();
            let mut want = expect.clone();
            merge::normalize(&mut want);
            prop_assert_eq!(got, want, "object {} diverged", id);
        }
    }
}
