//! Integration: the invocation hot path's copy-on-write snapshots and
//! cached dispatch plans.
//!
//! The dispatch-plan cache is rebuilt wholesale on every deploy, so a
//! redeploy must be observed by the *next* invoke — including dispatch
//! rewired through inheritance — and copy-on-write state snapshots must
//! be observationally identical to deep clones: committing a patch can
//! never mutate a snapshot an in-flight task still holds.

use std::sync::{Arc, Mutex};

use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::EmbeddedPlatform;
use oprc_value::{merge, vjson, Snapshot, Value};
use proptest::prelude::*;

/// Redeploying a package with a changed `FunctionDef` image swaps the
/// cached dispatch plan: the next invoke runs the new implementation.
#[test]
fn redeploy_swaps_dispatch_plan_for_changed_function() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/v1", |_| Ok(TaskResult::output("v1")));
    p.register_function("img/v2", |_| Ok(TaskResult::output("v2")));
    p.deploy_yaml(
        "classes:\n  - name: C\n    functions:\n      - name: f\n        image: img/v1\n",
    )
    .unwrap();
    let id = p.create_object("C", vjson!({})).unwrap();
    assert_eq!(
        p.invoke(id, "f", vec![]).unwrap().output.as_str(),
        Some("v1")
    );
    // Upgrade: same package (default name), same class, new image.
    p.deploy_yaml(
        "classes:\n  - name: C\n    functions:\n      - name: f\n        image: img/v2\n",
    )
    .unwrap();
    assert_eq!(
        p.invoke(id, "f", vec![]).unwrap().output.as_str(),
        Some("v2"),
        "stale dispatch plan survived the redeploy"
    );
}

/// Redeploy rewires *inherited* dispatch too: adding an override on a
/// subclass must take effect for existing objects of that subclass even
/// though the subclass's own entry never changed image before.
#[test]
fn redeploy_rewires_inherited_dispatch() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/base", |_| Ok(TaskResult::output("base")));
    p.register_function("img/loud", |_| Ok(TaskResult::output("LOUD")));
    let v1 = "
classes:
  - name: Base
    functions:
      - name: greet
        image: img/base
  - name: Loud
    parent: Base
";
    p.deploy_yaml(v1).unwrap();
    let loud = p.create_object("Loud", vjson!({})).unwrap();
    assert_eq!(
        p.invoke(loud, "greet", vec![]).unwrap().output.as_str(),
        Some("base"),
        "no override yet: dispatch inherits Base's implementation"
    );
    // v2 adds an override on the subclass only.
    let v2 = "
classes:
  - name: Base
    functions:
      - name: greet
        image: img/base
  - name: Loud
    parent: Base
    functions:
      - name: greet
        image: img/loud
";
    p.deploy_yaml(v2).unwrap();
    assert_eq!(
        p.invoke(loud, "greet", vec![]).unwrap().output.as_str(),
        Some("LOUD"),
        "inherited dispatch plan not rewired by the redeploy"
    );
}

/// Redeploying a changed dataflow spec invalidates the cached
/// `Arc<DataflowSpec>`: the same platform observes the rewired flow.
#[test]
fn redeploy_swaps_cached_dataflow_spec() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/add1", |t| {
        Ok(TaskResult::output(t.args[0].as_i64().unwrap_or(0) + 1))
    });
    p.register_function("img/double", |t| {
        Ok(TaskResult::output(t.args[0].as_i64().unwrap_or(0) * 2))
    });
    let flow = |first: &str, second: &str| {
        format!(
            "
classes:
  - name: M
    functions:
      - name: add1
        image: img/add1
      - name: double
        image: img/double
    dataflows:
      - name: calc
        steps:
          - id: a
            function: {first}
            inputs: [input]
          - id: b
            function: {second}
            inputs: [\"step:a\"]
"
        )
    };
    p.deploy_yaml(&flow("add1", "double")).unwrap();
    let id = p.create_object("M", vjson!({})).unwrap();
    // (10 + 1) * 2
    assert_eq!(
        p.invoke(id, "calc", vec![vjson!(10)])
            .unwrap()
            .output
            .as_i64(),
        Some(22)
    );
    p.deploy_yaml(&flow("double", "add1")).unwrap();
    // 10 * 2 + 1 — the cached spec must not survive the redeploy.
    assert_eq!(
        p.invoke(id, "calc", vec![vjson!(10)])
            .unwrap()
            .output
            .as_i64(),
        Some(21)
    );
}

/// A committed state patch never mutates the snapshot an in-flight (or
/// captured) task still holds: the commit boundary copies on write.
#[test]
fn committed_state_does_not_alias_task_snapshot() {
    let captured: Arc<Mutex<Vec<Snapshot>>> = Arc::new(Mutex::new(Vec::new()));
    let cap = Arc::clone(&captured);
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/incr", move |task| {
        // Capturing the snapshot is a refcount bump — exactly what a
        // still-in-flight retry shipment would hold.
        cap.lock().unwrap().push(task.state_in.clone());
        let n = task.state_in["count"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(n).with_patch(vjson!({"count": n})))
    });
    p.deploy_yaml(
        "classes:\n  - name: K\n    keySpecs: [count]\n    functions:\n      - name: incr\n        image: img/incr\n",
    )
    .unwrap();
    let id = p.create_object("K", vjson!({"count": 0})).unwrap();
    for expect in 1..=3 {
        let out = p.invoke(id, "incr", vec![]).unwrap();
        assert_eq!(out.output.as_i64(), Some(expect));
    }
    assert_eq!(p.get_state(id).unwrap()["count"].as_i64(), Some(3));
    // Every captured snapshot still shows the state *its* invocation
    // saw; commits copied instead of writing through the shared Arc.
    let snaps = captured.lock().unwrap();
    for (i, snap) in snaps.iter().enumerate() {
        assert_eq!(
            snap["count"].as_i64(),
            Some(i as i64),
            "commit mutated a snapshot held by invocation {i}"
        );
    }
}

/// Strategy: an arbitrary state document — nested objects/arrays with
/// integer, boolean, string, and null leaves (floats excluded so value
/// equality is exact).
fn arb_state() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::from),
        any::<bool>().prop_map(Value::from),
        "[a-z0-9]{0,12}".prop_map(Value::from),
        Just(Value::Null),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::from),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(|m| {
                let mut obj = Value::object();
                for (k, v) in m {
                    obj.insert(k, v);
                }
                obj
            }),
        ]
    })
}

proptest! {
    /// Copy-on-write snapshots are observationally identical to deep
    /// clones: merging a patch through `Snapshot::make_mut` produces the
    /// same document as merging into a deep-cloned `Value`, and never
    /// disturbs other holders of the snapshot.
    #[test]
    fn cow_snapshot_commits_match_deep_clone_commits(
        state in arb_state(),
        patch in arb_state(),
    ) {
        // Control: the pre-optimisation deep-clone commit.
        let mut control = state.clone();
        merge::deep_merge(&mut control, patch.clone());
        merge::normalize(&mut control);

        // CoW path: `shared` plays the in-flight task's re-shipped
        // snapshot; `committing` is the engine's commit-boundary handle.
        let shared = Snapshot::from(state.clone());
        let mut committing = shared.clone();
        {
            let m = committing.make_mut();
            merge::deep_merge(m, patch);
            merge::normalize(m);
        }
        prop_assert_eq!(committing.value(), &control);
        // The other holder is untouched — no aliasing through the Arc.
        prop_assert_eq!(shared.value(), &state);
        prop_assert!(!Snapshot::ptr_eq(&shared, &committing) || state == control);
        // Unwrapping the committed snapshot materialises the same doc.
        prop_assert_eq!(Snapshot::into_value(committing), control);
    }
}
