//! Flow-IR compilation end-to-end (DESIGN.md §13).
//!
//! Three contracts:
//!
//! 1. **Fusion collapses the hot path** — a 3-step same-object chain
//!    runs as one fused unit: one shard-lock hold, one `state.commit`
//!    span, `commits_total` delta of exactly 1, while every step still
//!    gets its own `engine.execute` span.
//! 2. **Fusion is semantics-preserving** — with the fusion pass
//!    disabled the same chain produces the same output and final state,
//!    just with one commit per step.
//! 3. **Live edits never tear** — `edit_flow` racing a storm of
//!    in-flight dataflow invocations yields old-plan or new-plan
//!    results only, never an error or a mix; invalid edits are rejected
//!    by the lint gate with the flow left untouched.

use oprc_core::dataflow::{DataRef, StepSpec};
use oprc_core::invocation::TaskResult;
use oprc_platform::embedded::{EmbeddedPlatform, FlowEdit};
use oprc_platform::PlatformError;
use oprc_telemetry::TelemetryConfig;
use oprc_value::{vjson, Value};

/// A 3-step self-bound chain: every step targets the flow's own object,
/// so the optimizer fuses `a → b → c` into a single unit.
const CHAIN_PACKAGE: &str = "
classes:
  - name: Doc
    keySpecs: [n]
    functions:
      - name: f
        image: img/f
    dataflows:
      - name: chain
        output: c
        steps:
          - id: a
            function: f
            inputs: [input]
          - id: b
            function: f
            inputs: [\"step:a\"]
          - id: c
            function: f
            inputs: [\"step:b\"]
";

/// `f` threads its argument (+1 per hop) and bumps a state counter, so
/// both the flow output and the committed state observe every step.
fn chain_platform() -> EmbeddedPlatform {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/f", |t| {
        let x = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        let n = t.state_in["n"].as_i64().unwrap_or(0) + 1;
        Ok(TaskResult::output(x + 1).with_patch(vjson!({"n": n})))
    });
    p.deploy_yaml(CHAIN_PACKAGE).expect("chain package deploys");
    p
}

#[test]
fn fused_chain_commits_once() {
    let mut p = chain_platform();
    p.enable_telemetry(TelemetryConfig::default());
    let id = p.create_object("Doc", vjson!({})).expect("creates");

    let commits_before = p.metrics().commits_total();
    let fused_before = p.metrics().fused_units_total();
    let out = p.invoke(id, "chain", vec![vjson!(5)]).expect("chain runs");
    assert_eq!(out.output.as_i64(), Some(8), "5 + one per step");

    // One commit and one fused unit for the whole 3-step chain.
    assert_eq!(p.metrics().commits_total() - commits_before, 1);
    assert_eq!(p.metrics().fused_units_total() - fused_before, 1);
    // All three steps were applied to state in one transaction.
    assert_eq!(p.get_state(id).unwrap()["n"].as_i64(), Some(3));

    let spans = p.telemetry().finished();
    let fused: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "dataflow.fused")
        .collect();
    assert_eq!(fused.len(), 1, "one fused unit span");
    assert_eq!(fused[0].attrs["chain"].as_str(), Some("a→b→c"));
    assert_eq!(fused[0].attrs["steps"].as_u64(), Some(3));

    let commits: Vec<_> = spans.iter().filter(|s| s.name == "state.commit").collect();
    assert_eq!(commits.len(), 1, "one state.commit span for the chain");
    assert_eq!(commits[0].attrs["fused"].as_bool(), Some(true));
    assert_eq!(commits[0].parent, Some(fused[0].id));

    let execs = spans.iter().filter(|s| s.name == "engine.execute").count();
    assert_eq!(execs, 3, "every step still gets an execute span");
    let loads = spans.iter().filter(|s| s.name == "state.load").count();
    assert_eq!(loads, 1, "one load for the whole chain");
}

#[test]
fn fusion_off_matches_fused_semantics() {
    // Fused run.
    let p_on = chain_platform();
    let id_on = p_on.create_object("Doc", vjson!({})).expect("creates");
    let commits_on_before = p_on.metrics().commits_total();
    let out_on = p_on
        .invoke(id_on, "chain", vec![vjson!(5)])
        .expect("fused chain runs");

    // Interpreted-shape run: same package, fusion pass disabled.
    let mut p_off = chain_platform();
    p_off.set_flow_fusion(false).expect("recompiles");
    let id_off = p_off.create_object("Doc", vjson!({})).expect("creates");
    let commits_before = p_off.metrics().commits_total();
    let out_off = p_off
        .invoke(id_off, "chain", vec![vjson!(5)])
        .expect("unfused chain runs");

    assert_eq!(out_on.output, out_off.output, "same flow output");
    assert_eq!(
        p_on.get_state(id_on).unwrap(),
        p_off.get_state(id_off).unwrap(),
        "same final state"
    );
    assert_eq!(
        p_off.metrics().commits_total() - commits_before,
        3,
        "unfused: one commit per step"
    );
    assert_eq!(p_off.metrics().fused_units_total(), 0);
    assert_eq!(
        p_on.metrics().commits_total() - commits_on_before,
        1,
        "fused: one for the chain"
    );
}

#[test]
fn live_edit_never_tears_in_flight_invokes() {
    let p = chain_platform();
    let ids: Vec<_> = (0..4)
        .map(|_| p.create_object("Doc", vjson!({})).unwrap())
        .collect();

    // Splice step `d` before `c` mid-storm: old plan answers 8
    // (3 hops), new plan answers 9 (4 hops) — nothing else.
    let edit = FlowEdit::AddStep {
        step: StepSpec::new("d", "f"),
        before: Some("c".into()),
    };
    std::thread::scope(|s| {
        for w in 0..4 {
            let p = &p;
            let ids = &ids;
            s.spawn(move || {
                for i in 0..200 {
                    let out = p
                        .invoke(ids[(w + i) % ids.len()], "chain", vec![vjson!(5)])
                        .expect("invokes never fail during a live edit");
                    let got = out.output.as_i64().unwrap();
                    assert!(got == 8 || got == 9, "torn plan: {got}");
                }
            });
        }
        s.spawn(|| p.edit_flow("Doc", "chain", edit).expect("edit applies"));
    });

    // The edit is fully live: a fresh invoke takes the 4-hop path.
    let id = p.create_object("Doc", vjson!({})).unwrap();
    let out = p.invoke(id, "chain", vec![vjson!(5)]).unwrap();
    assert_eq!(out.output.as_i64(), Some(9));
    assert_eq!(p.get_state(id).unwrap()["n"].as_i64(), Some(4));
}

#[test]
fn invalid_edits_are_rejected_atomically() {
    let p = chain_platform();
    let id = p.create_object("Doc", vjson!({})).unwrap();

    // Unknown function: the re-lint gate rejects before any state swap.
    let err = p
        .edit_flow(
            "Doc",
            "chain",
            FlowEdit::AddStep {
                step: StepSpec::new("bad", "ghost"),
                before: Some("c".into()),
            },
        )
        .expect_err("unknown function must be rejected");
    assert!(matches!(err, PlatformError::LintRejected(_)), "got {err:?}");

    // Deleting a step another step depends on through a non-splicable
    // shape, or one that does not exist, errors without changing the flow.
    assert!(p
        .edit_flow("Doc", "chain", FlowEdit::DeleteStep { id: "nope".into() })
        .is_err());
    assert!(p
        .edit_flow("Ghost", "chain", FlowEdit::DeleteStep { id: "a".into() })
        .is_err());

    // The original 3-hop plan still serves.
    let out = p.invoke(id, "chain", vec![vjson!(5)]).unwrap();
    assert_eq!(out.output.as_i64(), Some(8));

    // A valid delete splices `b` out: a → c, two hops.
    p.edit_flow("Doc", "chain", FlowEdit::DeleteStep { id: "b".into() })
        .expect("splicable delete applies");
    let id2 = p.create_object("Doc", vjson!({})).unwrap();
    let out = p.invoke(id2, "chain", vec![vjson!(5)]).unwrap();
    assert_eq!(out.output.as_i64(), Some(7));
    assert_eq!(p.get_state(id2).unwrap()["n"].as_i64(), Some(2));
}

/// Readonly steps whose output never reaches the flow output are
/// eliminated from the compiled plan: they run in the interpreter's
/// world-view but not in the compiled one, and `flow doctor` says so.
#[test]
fn dead_readonly_step_is_eliminated_from_compiled_plan() {
    let mut p = EmbeddedPlatform::new();
    p.register_function("img/f", |t| {
        let x = t.args.first().and_then(Value::as_i64).unwrap_or(0);
        Ok(TaskResult::output(x + 1).with_patch(vjson!({"n": (x + 1)})))
    });
    let seen_spy = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let spy = std::sync::Arc::clone(&seen_spy);
    p.register_function("img/spy", move |_| {
        spy.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(TaskResult::output(Value::Null))
    });
    p.deploy_yaml(
        "
classes:
  - name: Doc
    keySpecs: [n]
    functions:
      - name: f
        image: img/f
      - name: peek
        image: img/spy
        readonly: true
    dataflows:
      - name: audited
        output: b
        steps:
          - id: a
            function: f
            inputs: [input]
          - id: spy
            function: peek
            inputs: [\"step:a\"]
          - id: b
            function: f
            inputs: [\"step:a\"]
",
    )
    .expect("deploys");
    let id = p.create_object("Doc", vjson!({})).unwrap();
    let out = p.invoke(id, "audited", vec![vjson!(1)]).unwrap();
    assert_eq!(out.output.as_i64(), Some(3));
    assert_eq!(
        seen_spy.load(std::sync::atomic::Ordering::SeqCst),
        0,
        "dead readonly step is not executed by the compiled plan"
    );

    // ... and the doctor names the elimination.
    let reports = p.doctor();
    assert!(reports.iter().any(|r| r
        .diagnostics
        .iter()
        .any(|d| d.code == "OPRC050" && d.source.ends_with("step spy"))));
}

/// `flow doctor` and `lint` share the platform's single [`LintConfig`]:
/// a per-code override set once silences the finding in both.
#[test]
fn doctor_and_lint_share_the_lint_config() {
    let dead_spy = "
classes:
  - name: Doc
    keySpecs: [n]
    functions:
      - name: f
        image: img/f
      - name: peek
        image: img/f
        readonly: true
    dataflows:
      - name: audited
        output: b
        steps:
          - id: a
            function: f
            inputs: [input]
          - id: spy
            function: peek
            inputs: [\"step:a\"]
          - id: b
            function: f
            inputs: [\"step:a\"]
";
    let platform_with_config = |config: Option<oprc_analyzer::LintConfig>| {
        let mut p = EmbeddedPlatform::new();
        p.register_function("img/f", |_| Ok(TaskResult::output(Value::Null)));
        if let Some(c) = config {
            p.set_lint_config(c);
        }
        p.deploy_yaml(dead_spy).expect("deploys");
        p
    };

    // Default config: both lint and doctor report the dead step.
    let p = platform_with_config(None);
    let pkg = oprc_core::parse::package_from_yaml(dead_spy).unwrap();
    assert!(p.lint_package(&pkg).has_code("OPRC050"));
    assert!(p.doctor().iter().any(|r| r.has_code("OPRC050")));

    // One `allow` override silences it in both — no separate doctor
    // configuration exists.
    let p = platform_with_config(Some(oprc_analyzer::LintConfig::new().allow("OPRC050")));
    assert!(!p.lint_package(&pkg).has_code("OPRC050"));
    assert!(!p.doctor().iter().any(|r| r.has_code("OPRC050")));
}

/// `DataRef` wiring survives a round-trip through a live edit: a
/// constant-input step appended at the tail changes the flow output.
#[test]
fn appended_tail_step_with_const_input() {
    let p = chain_platform();
    let mut step = StepSpec::new("tail", "f");
    step.inputs.push(DataRef::Step {
        step: "c".into(),
        pointer: None,
    });
    p.edit_flow("Doc", "chain", FlowEdit::AddStep { step, before: None })
        .expect("tail append applies");
    // Output still points at `c` (append does not rewire the output),
    // but `tail` runs and bumps the counter one more time.
    let id = p.create_object("Doc", vjson!({})).unwrap();
    let out = p.invoke(id, "chain", vec![vjson!(5)]).unwrap();
    assert_eq!(out.output.as_i64(), Some(8));
    assert_eq!(p.get_state(id).unwrap()["n"].as_i64(), Some(4));
}
