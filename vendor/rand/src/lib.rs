//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the API subset this workspace uses: [`rngs::SmallRng`]
//! (implemented as xoshiro256++ seeded via SplitMix64, the same family
//! the real crate uses on 64-bit targets), the [`RngCore`] /
//! [`SeedableRng`] traits, and [`Rng::gen`] / [`Rng::gen_range`] for
//! `f64` and unsigned integer ranges. Output streams are deterministic
//! per seed but do not bit-match the real crate.

/// Low-level generator interface: raw words and byte fill.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (the real
/// crate's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&y));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
