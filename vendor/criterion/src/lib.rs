//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement
//! loop instead of the real crate's statistical machinery. Each
//! benchmark prints one line: name, iteration count, and mean time.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter as the name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    iters_run: u64,
    mean: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher { iters_run: 0, mean: Duration::ZERO }
    }

    /// Times `routine`, choosing an iteration count so the measurement
    /// takes roughly 50 ms (capped at 1000 iterations).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call, also used to size the loop.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.iters_run = iters;
        self.mean = total / u32::try_from(iters).unwrap_or(u32::MAX);
    }
}

fn run_one(id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    println!("bench {id:<40} {:>6} iters, mean {:?}", b.iters_run, b.mean);
}

/// Entry point holding benchmark configuration.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI args for compatibility; this stub ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&id.id, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    /// Prints the final summary (no-op in this stub).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's loop is self-sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub's loop is self-sizing.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub's loop is self-sizing.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        c.bench_function("id", |b| b.iter(|| black_box(1 + 1)));
        c.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).measurement_time(Duration::from_millis(1));
        g.warm_up_time(Duration::from_millis(1));
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
