//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements only the API subset this workspace uses: [`Bytes`] as a
//! cheaply-cloneable immutable byte buffer and [`BytesMut`] as a growable
//! builder that can be frozen. Cheap cloning is provided by `Arc` rather
//! than the real crate's refcounted vtable machinery; semantics (equality,
//! slicing via `Deref`) are the same for the operations used here.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.data, f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Appends `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        let b = m.freeze();
        assert_eq!(&b[..], b"abcd");
        assert_eq!(b.to_vec(), b"abcd".to_vec());
        assert_eq!(b, Bytes::from(b"abcd".to_vec()));
        assert_eq!(Bytes::from_static(b"x").len(), 1);
        assert!(Bytes::new().is_empty());
    }
}
