//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns a guard directly instead of a `Result`. A poisoned
//! std mutex (a panic while holding the lock) is recovered into the inner
//! guard, matching parking_lot's behaviour of not propagating poison.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` does not return a poison `Result`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking; `None` if held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards are not poison `Result`s.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
