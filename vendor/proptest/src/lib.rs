//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] test macro (with `#![proptest_config(..)]` and
//! multi-argument tests), the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, [`strategy::Just`],
//! [`prop_oneof!`], tuple and numeric-range strategies, regex-subset
//! string strategies, `any::<T>()` for primitive types, and
//! `prop::collection::{vec, btree_map}`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the failure message;
//!   runs are deterministic per test name, so the same case reproduces.
//! - **Regex strategies** support the subset of patterns used here:
//!   character classes with ranges and escapes, `\PC` (printable
//!   char), literal characters, and `{n}` / `{m,n}` repetition.
//! - Default case count is 64 (override with `PROPTEST_CASES`).

pub mod test_runner {
    //! Test configuration, deterministic RNG, and case outcomes.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another.
        Reject,
        /// An assertion failed — the property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, folded into a fixed session seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform integer in `[lo, hi)`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.below(hi - lo)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there are no value trees: a strategy is
    /// just a clonable sampler, and shrinking is not supported.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves and
        /// `branch` wraps an inner strategy into a deeper level.
        ///
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// signature compatibility; depth alone bounds recursion here.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let deeper = branch(current).boxed();
                current = BoxedStrategy::new(move |rng| {
                    // Recurse with probability 1/2: keeps expected size
                    // bounded while still reaching the depth limit.
                    if rng.next_u64() & 1 == 0 {
                        leaf.sample(rng)
                    } else {
                        deeper.sample(rng)
                    }
                });
            }
            current
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let me = self;
            BoxedStrategy::new(move |rng| me.sample(rng))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T> {
        sampler: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a sampling function.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { sampler: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { sampler: Rc::clone(&self.sampler) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between alternative strategies ([`prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Chooses uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf { options: self.options.clone() }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite doubles spanning many magnitudes.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = rng.below(120) as i32 - 60;
            mantissa * 2f64.powi(exp)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// A size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.range_u64(self.lo as u64, self.hi as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    ///
    /// Duplicate keys collapse, so maps may come out smaller than the
    /// drawn size (the real crate resamples; the difference is benign
    /// for property checks).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

pub mod string {
    //! Regex-subset string generation for `&str` strategies.

    use super::test_runner::TestRng;

    enum Atom {
        /// Inclusive character ranges, e.g. from `[a-z0-9_]`.
        Class(Vec<(char, char)>),
        /// `\PC`: an arbitrary printable character.
        Printable,
        /// A literal character.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize, // inclusive
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut pending: Option<char> = None;
                    loop {
                        let c = chars.next().unwrap_or_else(|| {
                            panic!("unterminated character class in regex {pattern:?}")
                        });
                        match c {
                            ']' => break,
                            '\\' => {
                                let esc = chars
                                    .next()
                                    .expect("dangling escape in character class");
                                if let Some(p) = pending.replace(esc) {
                                    ranges.push((p, p));
                                }
                            }
                            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                                let lo = pending.take().expect("range start");
                                let hi = chars.next().expect("range end");
                                assert!(lo <= hi, "inverted range in regex {pattern:?}");
                                ranges.push((lo, hi));
                            }
                            other => {
                                if let Some(p) = pending.replace(other) {
                                    ranges.push((p, p));
                                }
                            }
                        }
                    }
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                    Atom::Class(ranges)
                }
                '\\' => {
                    let esc = chars.next().expect("dangling escape in regex");
                    if esc == 'P' || esc == 'p' {
                        // `\PC` / `\p{..}`-style: treat as printable char.
                        chars.next();
                        Atom::Printable
                    } else {
                        Atom::Literal(esc)
                    }
                }
                other => Atom::Literal(other),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut first = String::new();
                let mut second: Option<String> = None;
                loop {
                    match chars.next().expect("unterminated repetition") {
                        '}' => break,
                        ',' => second = Some(String::new()),
                        d => match &mut second {
                            Some(s) => s.push(d),
                            None => first.push(d),
                        },
                    }
                }
                let lo: usize = first.parse().expect("repetition lower bound");
                let hi = match second {
                    Some(s) => s.parse().expect("repetition upper bound"),
                    None => lo,
                };
                (lo, hi)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Class(ranges) => {
                let r = &ranges[rng.below(ranges.len() as u64) as usize];
                let span = r.1 as u32 - r.0 as u32 + 1;
                // Surrogate-free by construction for the classes used
                // here (ASCII ranges and literal BMP chars).
                char::from_u32(r.0 as u32 + rng.below(u64::from(span)) as u32)
                    .unwrap_or(r.0)
            }
            Atom::Printable => {
                // Mostly ASCII with some multi-byte BMP characters.
                match rng.below(4) {
                    0 | 1 | 2 => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('x'),
                    _ => char::from_u32(0x00A1 + rng.below(0x400) as u32).unwrap_or('\u{00e9}'),
                }
            }
            Atom::Literal(c) => *c,
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Re-export of this crate under the conventional `prop` alias, so
    /// `prop::collection::vec(..)` works after a glob import.
    pub use crate as prop;
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(256);
                while accepted < config.cases {
                    if attempts >= max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} attempts for {} accepted)",
                            stringify!($name), attempts, accepted
                        );
                    }
                    attempts += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name), accepted, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::TestRng::from_name("shape");
        for _ in 0..200 {
            let s = crate::string::generate("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = crate::string::generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());
            assert!((1..=9).contains(&t.chars().count()));

            let p = crate::string::generate("\\PC{0,64}", &mut rng);
            assert!(p.chars().count() <= 64);

            let c = crate::string::generate(
                "[a-zA-Z0-9 _\\-\\.\\\\\"\u{00e9}\u{4e16}]{0,24}",
                &mut rng,
            );
            assert!(c.chars().count() <= 24);
            assert!(c.chars().all(|ch| {
                ch.is_ascii_alphanumeric()
                    || " _-.\\\"".contains(ch)
                    || ch == '\u{00e9}'
                    || ch == '\u{4e16}'
            }), "{c:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            v in prop::collection::vec(any::<u16>(), 0..5),
            b in any::<bool>(),
        ) {
            prop_assert!(v.len() < 5);
            let doubled: Vec<u32> = v.iter().map(|&x| u32::from(x) * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            prop_assume!(b || !b);
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let leaf = prop_oneof![Just(Tree::Leaf(0)), any::<i64>().prop_map(Tree::Leaf)];
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::from_name("tree");
        for _ in 0..50 {
            let _ = strat.sample(&mut rng);
        }
    }
}
